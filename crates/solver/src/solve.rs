//! The public solver API: a tableau-style search over the boolean structure
//! of normalized formulas with eager Fourier–Motzkin theory pruning, plus a
//! validity/satisfiability **memo table** keyed by structural fingerprints.
//!
//! # Query memoization
//!
//! `check` folds its input conjunction into a single hash-consed term and
//! keys the cache on that term's [`Fingerprint`] — a 128-bit structural
//! hash that is identical for identical structure in *any* arena on *any*
//! thread (see [`crate::term`]). Since the result of a query depends only
//! on the formula's structure, a repeated query — Houdini consecution
//! rounds re-proving the surviving candidates, typing rules re-discharging
//! the same `Ψ ⊢ d == 0` side conditions — is answered by one hash lookup
//! instead of a fresh normalize + search; and because the key carries no
//! arena identity, a [`QueryMemo`] can be **shared across solvers on
//! different threads**, so a parallel corpus driver warms one table for the
//! whole fleet. `prove` piggybacks on the same table via its refutation
//! encoding. Hits are counted in [`SolverStats::cache_hits`];
//! [`Solver::without_memo`] opts out (used by the microbenchmarks to pin
//! the speedup).

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use shadowdp_num::Rat;

use crate::fm::{check_sat, Constraint, FmResult, SatUndo, Saturation};
use crate::normalize::{Formula, Normalizer};
use crate::term::{with_shard, Fingerprint, Symbol, Term, TermArena, TermNode};
use crate::trail::{Trail, TrailOp};

/// Armed-only latency histograms for the two query outcomes (memo hit
/// vs. fresh solve), split as one `path`-labelled family. Disarmed —
/// the default, and the configuration the bench gate measures — every
/// query pays exactly one relaxed atomic load
/// ([`shadowdp_obs::armed`]); the member handles are cached so the
/// armed path is two clock reads plus three atomic adds, never a map
/// lookup.
static QUERY_LATENCY_US: shadowdp_obs::LazyHistogramFamily = shadowdp_obs::LazyHistogramFamily::new(
    "shadowdp_solver_query_us",
    "Latency of solver validity queries by memo outcome (microseconds; collected while tracing is armed)",
    "path",
);

/// Forces registration of this crate's lazily-declared metrics so a
/// scrape shows the full schema before the first query runs (a daemon
/// serving everything from its store never touches the query path).
pub fn register_metrics() {
    QUERY_LATENCY_US.get();
}

fn query_hist(hit: bool) -> &'static shadowdp_obs::Histogram {
    static HIT: std::sync::OnceLock<&'static shadowdp_obs::Histogram> = std::sync::OnceLock::new();
    static FRESH: std::sync::OnceLock<&'static shadowdp_obs::Histogram> =
        std::sync::OnceLock::new();
    if hit {
        HIT.get_or_init(|| QUERY_LATENCY_US.with("hit"))
    } else {
        FRESH.get_or_init(|| QUERY_LATENCY_US.with("fresh"))
    }
}

/// A satisfying assignment.
///
/// Keys are rendered strings (the public, solver-independent surface);
/// internally the search runs entirely over interned [`Symbol`]s and
/// converts once on the way out.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Values of real-sorted variables.
    pub reals: BTreeMap<String, Rat>,
    /// Values of bool-sorted variables.
    pub bools: BTreeMap<String, bool>,
    /// Whether a non-linear atom was abstracted during normalization; if
    /// so, this model may not satisfy the original (pre-abstraction)
    /// formula.
    pub possibly_spurious: bool,
}

impl Model {
    /// Value of a real variable, defaulting to zero (solver models are
    /// partial on variables that ended up unconstrained).
    pub fn real(&self, name: &str) -> Rat {
        self.reals.get(name).copied().unwrap_or(Rat::ZERO)
    }

    /// Value of a boolean variable, defaulting to `false`.
    pub fn bool(&self, name: &str) -> bool {
        self.bools.get(name).copied().unwrap_or(false)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.reals {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
            first = false;
        }
        for (k, v) in &self.bools {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
            first = false;
        }
        if self.possibly_spurious {
            write!(f, " (possibly spurious)")?;
        }
        Ok(())
    }
}

/// Result of a satisfiability check.
#[derive(Clone, Debug, PartialEq)]
pub enum CheckResult {
    /// A model was found.
    Sat(Model),
    /// No model exists (sound even when abstraction occurred).
    Unsat,
}

impl CheckResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, CheckResult::Sat(_))
    }
}

/// Result of a validity check (`prove`).
#[derive(Clone, Debug, PartialEq)]
pub enum ProveResult {
    /// The implication is valid.
    Proved,
    /// A countermodel to the implication was found. If
    /// [`Model::possibly_spurious`] is set, the goal may still be valid
    /// (abstraction lost precision) — callers must treat this as "unknown",
    /// never as "proved".
    Refuted(Model),
}

impl ProveResult {
    /// Whether the result is `Proved`.
    pub fn is_proved(&self) -> bool {
        matches!(self, ProveResult::Proved)
    }

    /// A definite counterexample, if the refutation is trustworthy.
    pub fn counterexample(&self) -> Option<&Model> {
        match self {
            ProveResult::Refuted(m) if !m.possibly_spurious => Some(m),
            _ => None,
        }
    }
}

/// Cumulative statistics, for the Table 1 harness and the pipeline report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of `check` queries answered (including cache hits).
    pub checks: u64,
    /// Number of `prove` queries answered.
    pub proves: u64,
    /// Number of theory (Fourier–Motzkin) calls.
    pub theory_calls: u64,
    /// Total solver time in microseconds.
    pub micros: u64,
    /// Queries answered from the memo table without a search.
    pub cache_hits: u64,
    /// Assumption-set-keyed entailment queries ([`Solver::prove_assuming`])
    /// answered, including memo hits. These are also counted in
    /// `checks`/`proves`/`cache_hits`; the separate counters exist so the
    /// Houdini engine's per-candidate consecution hit rate is observable on
    /// its own.
    pub assumption_queries: u64,
    /// Assumption-set-keyed entailment queries answered from the memo.
    pub assumption_hits: u64,
    /// Reversible ops recorded on search trails (worklist pops/pushes,
    /// boolean binds, incremental constraint saturations). A measure of
    /// raw search volume, independent of theory cost.
    pub trail_ops: u64,
    /// Deepest decision-level (disjunction) nesting any single search
    /// reached.
    pub max_trail_depth: u64,
    /// Theory steps served by *extending* an already-populated incremental
    /// saturation — the re-saturation work the trail core avoids.
    pub saturation_reuses: u64,
    /// Full from-scratch Fourier–Motzkin saturations (one per successful
    /// search, for model extraction).
    pub resaturations: u64,
}

impl SolverStats {
    /// Fraction of assumption-set-keyed entailment queries answered from
    /// the memo (`None` when no such query was asked). This is the
    /// consecution hit rate the per-candidate Houdini keying exists for.
    pub fn assumption_hit_rate(&self) -> Option<f64> {
        if self.assumption_queries == 0 {
            None
        } else {
            Some(self.assumption_hits as f64 / self.assumption_queries as f64)
        }
    }

    /// Fraction of saturation work served incrementally — pushes onto a
    /// live saturation over all saturation events (`None` before any
    /// theory work). The bench gate's Houdini narrow-check invariant reads
    /// this: a pushed-assumption round should extend its shared base far
    /// more often than it re-saturates.
    pub fn saturation_reuse_rate(&self) -> Option<f64> {
        let total = self.saturation_reuses + self.resaturations;
        if total == 0 {
            None
        } else {
            Some(self.saturation_reuses as f64 / total as f64)
        }
    }
}

/// A resource budget for a solver: a wall-clock deadline and/or a cap on
/// theory (Fourier–Motzkin) steps, shared by every query the solver runs
/// until the budget is cleared.
///
/// Budgets make a pathological query **bounded instead of hanging**: when
/// either limit trips mid-search, the search aborts, the solver records a
/// sticky exhaustion reason ([`Solver::exhausted`]), and the query — plus
/// every later query until [`Solver::clear_budget`]/[`Solver::set_budget`]
/// resets the state — returns a *possibly-spurious* `Sat`. That degradation
/// is sound by the same argument as non-linear abstraction: exhaustion only
/// ever turns would-be answers into "maybe Sat", so `Unsat` (and therefore
/// `Proved`) can never be produced by a budget trip. Exhausted results are
/// **never memoized** — the memo holds only verdicts that were actually
/// computed, so a later run with a larger budget starts clean.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock allowance, measured from [`Solver::set_budget`].
    pub deadline: Option<Duration>,
    /// Total theory-call allowance across all queries under this budget.
    pub max_theory_calls: Option<u64>,
}

impl Budget {
    /// A budget with only a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Budget {
        Budget {
            deadline: Some(deadline),
            max_theory_calls: None,
        }
    }

    /// A budget with only a theory-call cap.
    pub fn with_theory_calls(max: u64) -> Budget {
        Budget {
            deadline: None,
            max_theory_calls: Some(max),
        }
    }

    /// Whether the budget imposes no limit at all.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_theory_calls.is_none()
    }
}

/// Live countdown state for an installed [`Budget`].
#[derive(Clone, Copy, Debug)]
struct BudgetState {
    deadline: Option<Instant>,
    calls_left: Option<u64>,
}

/// Number of lock shards in a [`QueryMemo`]. A power of two so the shard
/// index is a mask of the fingerprint's low bits; 16 comfortably exceeds
/// the worker counts of CI-class machines, so two workers touching the
/// same shard at the same instant is the exception, not the rule.
const MEMO_SHARDS: usize = 16;

/// A validity/satisfiability memo table, shareable across solvers and
/// threads.
///
/// Keys are structural [`Fingerprint`]s of whole query conjunctions, so an
/// entry written by a solver on one thread (against its own arena shard)
/// answers the structurally identical query from any other thread. The
/// table is split into [`MEMO_SHARDS`] fingerprint-hashed lock shards:
/// queries hold one shard's lock only for the lookup or the insert, never
/// across a solve, and two workers contend only when their queries land in
/// the same shard — so the hit path stays constant-time as worker counts
/// grow (a daemon serving a batched corpus hammers this path from every
/// core at once). Fingerprints are already uniformly mixed 128-bit hashes,
/// so the low bits are an adequate shard index.
///
/// [`Solver::new`] gives each solver a private table; a corpus driver that
/// wants cross-thread reuse creates one with [`QueryMemo::default`] inside
/// an [`Arc`] and hands clones to [`Solver::with_memo`]. For persistence,
/// [`QueryMemo::snapshot`] exports every entry in deterministic order and
/// [`QueryMemo::absorb`] merges entries back in; a long-lived process that
/// flushes incrementally instead drains only what changed with
/// [`QueryMemo::drain_dirty`] — the trio is the contract the service
/// crate's disk-backed verdict store is built on.
#[derive(Debug)]
pub struct QueryMemo {
    shards: Vec<Mutex<MemoShard>>,
}

/// One lock shard: the entry map plus the fingerprints *solved into* it
/// since the last [`QueryMemo::drain_dirty`]. Only fresh solves
/// ([`QueryMemo::insert`]) land in `dirty` — entries merged back from a
/// persisted snapshot ([`QueryMemo::absorb`]) are by definition already on
/// disk and must not be re-flushed.
#[derive(Debug, Default)]
struct MemoShard {
    entries: HashMap<Fingerprint, CheckResult>,
    dirty: Vec<Fingerprint>,
}

impl Default for QueryMemo {
    fn default() -> QueryMemo {
        QueryMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| Mutex::new(MemoShard::default()))
                .collect(),
        }
    }
}

impl QueryMemo {
    fn shard(&self, key: Fingerprint) -> &Mutex<MemoShard> {
        &self.shards[(key.0 as usize) & (MEMO_SHARDS - 1)]
    }

    /// Number of memoized queries, summed across shards. Consistent when
    /// quiescent; during concurrent inserts it is a lower bound on the
    /// entries any later reader will see (each shard is counted atomically).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// Whether the table is empty (every shard is).
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().entries.is_empty())
    }

    /// Exports every memoized entry, sorted by fingerprint so the result
    /// is deterministic regardless of shard layout or insertion order —
    /// the persistence tier hashes serialized snapshots, so order matters.
    pub fn snapshot(&self) -> Vec<(Fingerprint, CheckResult)> {
        let mut out: Vec<(Fingerprint, CheckResult)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .entries
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Exports the entries *solved since the last drain* (or since the
    /// table was created), sorted by fingerprint and deduplicated, and
    /// resets the dirty tracking. This is the incremental sibling of
    /// [`QueryMemo::snapshot`]: a daemon that appends delta records to its
    /// verdict log after every batch calls this instead of re-exporting
    /// the whole table, so flush cost tracks the batch, not the table.
    ///
    /// Entries merged in with [`QueryMemo::absorb`] are never dirty (they
    /// came *from* persistence); only fresh solves are.
    pub fn drain_dirty(&self) -> Vec<(Fingerprint, CheckResult)> {
        let mut out: Vec<(Fingerprint, CheckResult)> = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dirty = std::mem::take(&mut shard.dirty);
            for key in dirty {
                if let Some(value) = shard.entries.get(&key) {
                    out.push((key, value.clone()));
                }
            }
        }
        out.sort_by_key(|(k, _)| *k);
        // Two threads racing the same query both insert (and both mark);
        // one export is enough.
        out.dedup_by_key(|(k, _)| *k);
        out
    }

    /// Merges entries (e.g. a [`QueryMemo::snapshot`] loaded from disk)
    /// into the table. Existing entries win: a live table's verdicts were
    /// computed by this process and never need overwriting — and results
    /// are structural, so a disagreement is impossible short of a corrupted
    /// snapshot, which must not clobber good entries.
    pub fn absorb(&self, entries: impl IntoIterator<Item = (Fingerprint, CheckResult)>) {
        for (key, value) in entries {
            self.shard(key).lock().entries.entry(key).or_insert(value);
        }
    }

    /// Looks up one memoized verdict. Public for the persistence layer:
    /// a verdict store healing a dangling dependency (an entry a
    /// compaction dropped but a later job turned out to need) re-reads it
    /// from the live memo by fingerprint.
    pub fn get(&self, key: Fingerprint) -> Option<CheckResult> {
        self.shard(key).lock().entries.get(&key).cloned()
    }

    fn insert(&self, key: Fingerprint, value: CheckResult) {
        let mut shard = self.shard(key).lock();
        shard.entries.insert(key, value);
        shard.dirty.push(key);
    }

    fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.entries.clear();
            shard.dirty.clear();
        }
    }
}

/// The QF-LRA solver.
///
/// Holds only statistics and a handle to a query memo table between
/// queries; cheap to create. (`Solver` is not `Sync`: create one per
/// thread. The [`QueryMemo`] *is* shareable across threads, and terms
/// rebuilt on another thread's arena shard hit the same entries because
/// keys are structural fingerprints.)
///
/// # Examples
///
/// ```
/// use shadowdp_solver::{Solver, Term};
/// let s = Solver::new();
/// let x = Term::real_var("x");
/// // x <= 1 ∧ x >= 2 is unsatisfiable
/// let r = s.check(&[x.le(Term::int(1)), x.ge(Term::int(2))]);
/// assert!(!r.is_sat());
/// ```
#[derive(Debug)]
pub struct Solver {
    stats: Cell<SolverStats>,
    memo: Arc<QueryMemo>,
    memo_enabled: Cell<bool>,
    /// Fingerprints of every memoized query this solver asked (hit or
    /// fresh solve), in ask order. The verification service records these
    /// per job as the pipeline-tier entry's solver-tier dependencies, so
    /// store compaction can prove which solver verdicts are still
    /// reachable from some persisted job. Empty while the memo is
    /// disabled (no fingerprints are computed at all on that path).
    touched: RefCell<Vec<Fingerprint>>,
    /// Countdown state of the installed [`Budget`], if any.
    budget: RefCell<Option<BudgetState>>,
    /// Why the budget ran out, once it has: set on the first trip, cleared
    /// only by [`Solver::set_budget`]/[`Solver::clear_budget`]. While set,
    /// every fresh solve short-circuits to a possibly-spurious `Sat` and
    /// nothing is memoized.
    exhausted: RefCell<Option<String>>,
    /// Open assumption frames ([`Solver::push_assumptions`]), innermost
    /// last. Terms are recorded eagerly but normalized and absorbed into
    /// the shared saturation lazily, on the first pushed query that misses
    /// the memo — a fully warm run never pays theory work for its bases.
    frames: RefCell<Vec<AssumptionFrame>>,
    /// The shared incremental context pushed queries run against: `None`
    /// until a query materializes a frame, dropped when the last frame is
    /// popped.
    actx: RefCell<Option<AssumptionCtx>>,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates a solver with a private memo table (memoization on).
    pub fn new() -> Solver {
        Solver::with_memo(Arc::new(QueryMemo::default()))
    }

    /// Creates a solver backed by a caller-provided (possibly shared) memo
    /// table.
    pub fn with_memo(memo: Arc<QueryMemo>) -> Solver {
        Solver {
            stats: Cell::new(SolverStats::default()),
            memo,
            memo_enabled: Cell::new(true),
            touched: RefCell::new(Vec::new()),
            budget: RefCell::new(None),
            exhausted: RefCell::new(None),
            frames: RefCell::new(Vec::new()),
            actx: RefCell::new(None),
        }
    }

    /// Installs a resource budget covering every query from now on. The
    /// deadline clock starts here. Replaces any previous budget and clears
    /// any previous exhaustion.
    pub fn set_budget(&self, budget: Budget) {
        *self.budget.borrow_mut() = if budget.is_unlimited() {
            None
        } else {
            Some(BudgetState {
                deadline: budget.deadline.map(|d| Instant::now() + d),
                calls_left: budget.max_theory_calls,
            })
        };
        *self.exhausted.borrow_mut() = None;
    }

    /// Removes the budget and clears any exhaustion, restoring unlimited
    /// operation.
    pub fn clear_budget(&self) {
        *self.budget.borrow_mut() = None;
        *self.exhausted.borrow_mut() = None;
    }

    /// Why the installed budget ran out, if it has. Sticky until the
    /// budget is reset; while set, every fresh solve returns a
    /// possibly-spurious `Sat` without searching (memo hits are still
    /// served — they are complete verdicts and cost nothing).
    pub fn exhausted(&self) -> Option<String> {
        self.exhausted.borrow().clone()
    }

    /// Records the first exhaustion reason (later trips keep the first).
    fn mark_exhausted(&self, reason: String) {
        let mut slot = self.exhausted.borrow_mut();
        if slot.is_none() {
            *slot = Some(reason);
        }
    }

    /// The memo table this solver reads and writes.
    pub fn memo(&self) -> &Arc<QueryMemo> {
        &self.memo
    }

    /// Creates a solver with the query memo table disabled (every query
    /// runs the full normalize + search pipeline; used for benchmarking the
    /// uncached path).
    pub fn without_memo() -> Solver {
        let s = Solver::new();
        s.memo_enabled.set(false);
        s
    }

    /// Enables or disables query memoization for this solver. Disabling
    /// also drops the table's entries when this solver is its only owner (a
    /// *shared* table is left intact for its other users — they opted into
    /// it independently).
    pub fn set_memo_enabled(&self, enabled: bool) {
        self.memo_enabled.set(enabled);
        if !enabled && Arc::strong_count(&self.memo) == 1 {
            self.memo.clear();
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats.get()
    }

    /// Resets statistics.
    pub fn reset_stats(&self) {
        self.stats.set(SolverStats::default());
    }

    /// The fingerprints of every memoized query asked so far, sorted and
    /// deduplicated. A solver that served one verification job yields
    /// exactly that job's solver-tier dependency set (the service's store
    /// compaction keeps a persisted solver verdict alive iff some
    /// pipeline-tier entry lists it here). A solver reused across several
    /// runs yields the union, which over-approximates — safe for
    /// reachability (entries are only ever *kept* longer).
    pub fn touched_fingerprints(&self) -> Vec<Fingerprint> {
        let mut out = self.touched.borrow().clone();
        out.sort();
        out.dedup();
        out
    }

    /// Checks satisfiability of the conjunction of `terms` (thread shard).
    pub fn check(&self, terms: &[Term]) -> CheckResult {
        with_shard(|arena| self.check_in(arena, terms))
    }

    /// [`Solver::check`] against an explicit arena: `terms` must have been
    /// built by `arena`. Cached results are keyed by the conjunction's
    /// structural fingerprint, so a different arena that interned the same
    /// structure shares entries — and arenas with different contents can
    /// never alias.
    pub fn check_in(&self, arena: &mut TermArena, terms: &[Term]) -> CheckResult {
        let start = Instant::now();
        // The cache key is the fingerprint of a *raw* n-ary And intern —
        // one O(n) hash of the child ids, not the O(n²) smart-constructor
        // fold (the fold clones the accumulated child vector per conjunct).
        // Raw keys are slightly finer than folded ones (slices that would
        // fold identically can key apart), which costs at most a duplicate
        // entry, never a wrong answer; the hot Houdini repeats pass
        // bit-identical slices anyway. Key construction is skipped entirely
        // with the memo off, so a memo-less solver never grows the arena
        // with key nodes.
        let key = if self.memo_enabled.get() {
            let key_id = match terms {
                [] => arena.bool_const(true),
                [t] => *t,
                _ => arena.intern(TermNode::And(terms.to_vec())),
            };
            Some((key_id, arena.fingerprint(key_id)))
        } else {
            None
        };

        if let Some((_, fp)) = key {
            self.touched.borrow_mut().push(fp);
            if let Some(hit) = self.memo.get(fp) {
                let us = start.elapsed().as_micros() as u64;
                let mut stats = self.stats.get();
                stats.checks += 1;
                stats.cache_hits += 1;
                stats.micros += us;
                self.stats.set(stats);
                if shadowdp_obs::armed() {
                    query_hist(true).observe(us);
                }
                return hit;
            }
        }

        let out = self.solve_terms(arena, terms, key.map(|(key_id, _)| key_id));

        // A result produced under (or after) budget exhaustion is a
        // placeholder, not a verdict — memoizing it would poison every
        // later run, including ones with a larger budget.
        if let Some((_, fp)) = key {
            if self.exhausted.borrow().is_none() {
                self.memo.insert(fp, out.clone());
            }
        }

        let us = start.elapsed().as_micros() as u64;
        let mut stats = self.stats.get();
        stats.micros += us;
        self.stats.set(stats);
        if shadowdp_obs::armed() {
            query_hist(false).observe(us);
        }
        out
    }

    /// The uncached solve pipeline — normalize, tableau search, model
    /// conversion — shared by the monolithic ([`Solver::check_in`]) and
    /// assumption-set ([`Solver::prove_assuming`]) query paths. `folded`
    /// is the pre-interned n-ary And the memoized monolithic path already
    /// built for its cache key (normalized as one formula); without it the
    /// terms normalize individually, so a memo-less query never grows the
    /// arena with key nodes. Updates `checks`/`theory_calls`; callers own
    /// `micros` and their memo insertions.
    fn solve_terms(
        &self,
        arena: &mut TermArena,
        terms: &[Term],
        folded: Option<Term>,
    ) -> CheckResult {
        // Sticky exhaustion: once the budget tripped, later queries must
        // not burn what little may remain of the deadline — answer with
        // the same sound possibly-spurious `Sat` placeholder immediately.
        if self.exhausted.borrow().is_some() {
            let mut stats = self.stats.get();
            stats.checks += 1;
            self.stats.set(stats);
            return exhausted_placeholder();
        }
        // Fault-injection site for the whole solve step: `Panic` models a
        // logic bug inside the solver (the corpus driver's isolation must
        // contain it), `Delay` a pathological query, and `Error`/torn
        // faults degrade to budget exhaustion — bounded, reportable, never
        // a wrong verdict.
        match shadowdp_fault::check("solver.step") {
            None => {}
            Some(shadowdp_fault::FaultKind::Panic) => panic!("injected panic at solver.step"),
            Some(shadowdp_fault::FaultKind::Delay { millis }) => {
                std::thread::sleep(Duration::from_millis(millis));
            }
            Some(_) => {
                self.mark_exhausted("injected solver fault".to_string());
                let mut stats = self.stats.get();
                stats.checks += 1;
                self.stats.set(stats);
                return exhausted_placeholder();
            }
        }

        let mut norm = Normalizer::new();
        let formulas: Vec<Formula> = match folded {
            Some(key_id) => vec![norm.normalize(arena, key_id, true)],
            None => terms
                .iter()
                .map(|t| norm.normalize(arena, *t, true))
                .collect(),
        };
        let abstracted = norm.abstracted;

        let (deadline, calls_left) = match *self.budget.borrow() {
            Some(state) => (state.deadline, state.calls_left),
            None => (None, None),
        };
        let mut bools = BoolModel::new();
        let mut constraints = Vec::new();
        let mut sat = Saturation::new();
        let mut search = TrailSearch::new(
            formulas.iter().collect(),
            &mut bools,
            &mut constraints,
            &mut sat,
            deadline,
            calls_left,
        );
        let outcome = search.run();
        let spent = search.theory_calls;
        let counters = search.counters();

        // Charge this search's theory work against the budget.
        if let Some(state) = self.budget.borrow_mut().as_mut() {
            if let Some(left) = state.calls_left.as_mut() {
                *left = left.saturating_sub(spent);
            }
        }

        let mut stats = self.stats.get();
        stats.checks += 1;
        stats.theory_calls += spent;
        counters.fold_into(&mut stats);
        self.stats.set(stats);

        match outcome {
            SearchOutcome::Exhausted(reason) => {
                self.mark_exhausted(reason);
                exhausted_placeholder()
            }
            SearchOutcome::Sat(reals, model_bools) => CheckResult::Sat(Model {
                reals: reals
                    .into_iter()
                    .map(|(k, v)| (k.as_str().to_string(), v))
                    .collect(),
                bools: model_bools
                    .into_iter()
                    .map(|(k, v)| (k.as_str().to_string(), v))
                    .collect(),
                possibly_spurious: abstracted,
            }),
            SearchOutcome::Unsat => CheckResult::Unsat,
        }
    }

    /// Attempts to prove `assumptions ⊢ goal` by refutation: checks
    /// `assumptions ∧ ¬goal` for unsatisfiability.
    pub fn prove(&self, assumptions: &[Term], goal: &Term) -> ProveResult {
        let r = with_shard(|arena| {
            let mut terms: Vec<Term> = assumptions.to_vec();
            terms.push(arena.not(*goal));
            self.check_in(arena, &terms)
        });
        let mut stats = self.stats.get();
        stats.proves += 1;
        self.stats.set(stats);
        match r {
            CheckResult::Unsat => ProveResult::Proved,
            CheckResult::Sat(m) => ProveResult::Refuted(m),
        }
    }

    /// Convenience: whether `assumptions ⊢ goal` holds.
    pub fn entails(&self, assumptions: &[Term], goal: &Term) -> bool {
        self.prove(assumptions, goal).is_proved()
    }

    /// Assumption-set-aware [`Solver::prove`]: attempts to prove
    /// `assumptions ⊢ goal` with the memo keyed on the **multiset of the
    /// individual assumption fingerprints** plus the goal fingerprint,
    /// instead of the fingerprint of one monolithic conjunction term.
    ///
    /// The difference matters whenever the same entailment is re-asked with
    /// its assumptions in a different order, grouping, or surrounding
    /// context: a multiset key is insensitive to all of that, so the repeat
    /// is a memo hit. The Houdini engine is the motivating caller — each
    /// candidate's consecution obligation is keyed by the assumptions *it*
    /// is checked under, so a round whose candidate set shrank re-uses
    /// every verdict for candidates whose own assumption sets are unchanged
    /// (under the old whole-conjunction key, one dropped sibling perturbed
    /// every query in the round).
    ///
    /// Entries land in the same [`QueryMemo`] as plain queries (the key is
    /// domain-separated so the two families cannot collide), so they
    /// snapshot, absorb, drain, and persist through the verification
    /// service's store exactly like monolithic-key entries — a persisted
    /// consecution verdict transfers across candidate-set variations and
    /// across processes. Hits and totals are counted in
    /// [`SolverStats::assumption_hits`]/[`SolverStats::assumption_queries`]
    /// (as well as the aggregate `checks`/`cache_hits`).
    pub fn prove_assuming(&self, assumptions: &[Term], goal: &Term) -> ProveResult {
        let start = Instant::now();
        let r = with_shard(|arena| {
            let key = if self.memo_enabled.get() {
                Some(assumption_set_key(arena, assumptions, *goal))
            } else {
                None
            };

            if let Some(fp) = key {
                self.touched.borrow_mut().push(fp);
                if let Some(hit) = self.memo.get(fp) {
                    let mut stats = self.stats.get();
                    stats.checks += 1;
                    stats.cache_hits += 1;
                    stats.assumption_queries += 1;
                    stats.assumption_hits += 1;
                    self.stats.set(stats);
                    if shadowdp_obs::armed() {
                        query_hist(true).observe(start.elapsed().as_micros() as u64);
                    }
                    return hit;
                }
            }

            // Miss: refute `assumptions ∧ ¬goal` with a fresh search. The
            // verdict is memoized under the multiset key only — no folded
            // And node is interned, so this path never grows the arena
            // with key nodes (memoized or not).
            let mut terms: Vec<Term> = Vec::with_capacity(assumptions.len() + 1);
            terms.extend_from_slice(assumptions);
            terms.push(arena.not(*goal));
            let out = self.solve_terms(arena, &terms, None);

            let mut stats = self.stats.get();
            stats.assumption_queries += 1;
            self.stats.set(stats);
            if shadowdp_obs::armed() {
                query_hist(false).observe(start.elapsed().as_micros() as u64);
            }

            if let Some(fp) = key {
                // Same discipline as `check_in`: exhausted placeholders
                // are never memoized.
                if self.exhausted.borrow().is_none() {
                    self.memo.insert(fp, out.clone());
                }
            }
            out
        });

        let mut stats = self.stats.get();
        stats.proves += 1;
        stats.micros += start.elapsed().as_micros() as u64;
        self.stats.set(stats);
        match r {
            CheckResult::Unsat => ProveResult::Proved,
            CheckResult::Sat(m) => ProveResult::Refuted(m),
        }
    }

    /// Convenience: whether `assumptions ⊢ goal` holds, keyed per
    /// assumption set (see [`Solver::prove_assuming`]).
    pub fn entails_assuming(&self, assumptions: &[Term], goal: &Term) -> bool {
        self.prove_assuming(assumptions, goal).is_proved()
    }

    /// Convenience: whether two boolean terms are equivalent under the
    /// assumptions.
    pub fn equivalent(&self, assumptions: &[Term], a: &Term, b: &Term) -> bool {
        self.entails(assumptions, &(*a).iff(*b))
    }

    /// Opens an assumption frame: every subsequent [`Solver::prove_pushed`]
    /// / [`Solver::entails_pushed`] query runs under the conjunction of all
    /// open frames, until the matching [`Solver::pop_assumptions`]. Frames
    /// nest (strictly LIFO).
    ///
    /// Recording is free: terms are normalized and absorbed into the
    /// shared incremental saturation only when a pushed query actually
    /// misses the memo, so warm workloads — every consecution verdict
    /// already persisted — never pay any theory work for their bases.
    ///
    /// The Houdini engine is the motivating caller: it pushes one frame
    /// with the candidate-independent slice of a path condition, then per
    /// candidate pushes the narrow Δ, queries, and pops — the shared base
    /// is saturated once per round instead of re-proved inside every
    /// query.
    pub fn push_assumptions(&self, terms: &[Term]) {
        self.frames.borrow_mut().push(AssumptionFrame {
            terms: terms.to_vec(),
            materialized: None,
        });
    }

    /// Closes the innermost assumption frame, rolling its materialized
    /// state (bool bindings, constraints, saturation steps, disjunctive
    /// seeds) back out of the shared context.
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn pop_assumptions(&self) {
        let frame = self
            .frames
            .borrow_mut()
            .pop()
            .expect("pop_assumptions without an open frame");
        if let Some(undo) = frame.materialized {
            let mut actx = self.actx.borrow_mut();
            let ctx = actx
                .as_mut()
                .expect("a materialized frame implies a live context");
            strip_frame(ctx, undo);
        }
        if self.frames.borrow().is_empty() {
            // Dropping the context with the last frame also drops the
            // shared normalizer, so abstraction symbols cannot accumulate
            // across unrelated assumption scopes.
            *self.actx.borrow_mut() = None;
        }
    }

    /// [`Solver::prove_assuming`] against the **pushed assumption
    /// frames**: attempts to prove `frames ⊢ goal` where `frames` is the
    /// conjunction of every open frame.
    ///
    /// Memo-keyed identically to [`Solver::prove_assuming`] over the
    /// flattened multiset of all open frames' terms, so verdicts transfer
    /// freely between the two entry points — and through the persisted
    /// verdict store, whose keys this preserves byte for byte. The
    /// difference is the miss path: instead of re-normalizing and
    /// re-saturating every assumption per query, the frames' conjunctive
    /// parts live in one shared incremental saturation; only the negated
    /// goal (plus any disjunctive assumption residue) is searched per
    /// query, and the trail unwinds the shared state back to the base
    /// afterwards.
    pub fn prove_pushed(&self, goal: &Term) -> ProveResult {
        let start = Instant::now();
        let r = with_shard(|arena| self.check_pushed(arena, goal, start));
        let mut stats = self.stats.get();
        stats.proves += 1;
        stats.micros += start.elapsed().as_micros() as u64;
        self.stats.set(stats);
        match r {
            CheckResult::Unsat => ProveResult::Proved,
            CheckResult::Sat(m) => ProveResult::Refuted(m),
        }
    }

    /// Convenience: whether the pushed assumption frames entail `goal`.
    pub fn entails_pushed(&self, goal: &Term) -> bool {
        self.prove_pushed(goal).is_proved()
    }

    /// The refutation check behind [`Solver::prove_pushed`], with the same
    /// stats and degradation choreography as the `prove_assuming` miss
    /// path (sticky exhaustion, the `solver.step` fault site, no
    /// memoization of placeholders).
    fn check_pushed(&self, arena: &mut TermArena, goal: &Term, start: Instant) -> CheckResult {
        let key = if self.memo_enabled.get() {
            let frames = self.frames.borrow();
            let flat: Vec<Term> = frames
                .iter()
                .flat_map(|f| f.terms.iter().copied())
                .collect();
            Some(assumption_set_key(arena, &flat, *goal))
        } else {
            None
        };

        if let Some(fp) = key {
            self.touched.borrow_mut().push(fp);
            if let Some(hit) = self.memo.get(fp) {
                let mut stats = self.stats.get();
                stats.checks += 1;
                stats.cache_hits += 1;
                stats.assumption_queries += 1;
                stats.assumption_hits += 1;
                self.stats.set(stats);
                if shadowdp_obs::armed() {
                    query_hist(true).observe(start.elapsed().as_micros() as u64);
                }
                return hit;
            }
        }

        let out = 'miss: {
            // Sticky exhaustion answers immediately, exactly like
            // `solve_terms`.
            if self.exhausted.borrow().is_some() {
                let mut stats = self.stats.get();
                stats.checks += 1;
                stats.assumption_queries += 1;
                self.stats.set(stats);
                break 'miss exhausted_placeholder();
            }
            match shadowdp_fault::check("solver.step") {
                None => {}
                Some(shadowdp_fault::FaultKind::Panic) => panic!("injected panic at solver.step"),
                Some(shadowdp_fault::FaultKind::Delay { millis }) => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                Some(_) => {
                    self.mark_exhausted("injected solver fault".to_string());
                    let mut stats = self.stats.get();
                    stats.checks += 1;
                    stats.assumption_queries += 1;
                    self.stats.set(stats);
                    break 'miss exhausted_placeholder();
                }
            }

            // Bring every open frame into the shared context. Frame atoms
            // are theory work like any other and charge the budget.
            let mut frame_spent: u64 = 0;
            let mut frame_reuses: u64 = 0;
            let materialized = self.materialize_frames(arena, &mut frame_spent, &mut frame_reuses);
            if let Some(state) = self.budget.borrow_mut().as_mut() {
                if let Some(left) = state.calls_left.as_mut() {
                    *left = left.saturating_sub(frame_spent);
                }
            }
            if let Err(reason) = materialized {
                self.mark_exhausted(reason);
                let mut stats = self.stats.get();
                stats.checks += 1;
                stats.theory_calls += frame_spent;
                stats.saturation_reuses += frame_reuses;
                stats.assumption_queries += 1;
                self.stats.set(stats);
                break 'miss exhausted_placeholder();
            }

            let (frames_abstracted, frames_inconsistent) = {
                let frames = self.frames.borrow();
                (
                    frames
                        .iter()
                        .filter_map(|f| f.materialized.as_ref())
                        .any(|u| u.abstracted),
                    frames
                        .iter()
                        .filter_map(|f| f.materialized.as_ref())
                        .any(|u| u.inconsistent),
                )
            };
            if frames_inconsistent {
                // Contradictory assumptions entail everything: the
                // conjunction `frames ∧ ¬goal` is unsat before the goal is
                // even looked at.
                let mut stats = self.stats.get();
                stats.checks += 1;
                stats.theory_calls += frame_spent;
                stats.saturation_reuses += frame_reuses;
                stats.assumption_queries += 1;
                self.stats.set(stats);
                break 'miss CheckResult::Unsat;
            }

            let (deadline, calls_left) = match *self.budget.borrow() {
                Some(state) => (state.deadline, state.calls_left),
                None => (None, None),
            };
            let mut actx = self.actx.borrow_mut();
            let ctx = actx
                .as_mut()
                .expect("materialize_frames installs the context");
            ctx.norm.abstracted = false;
            let neg = arena.not(*goal);
            let goal_f = ctx.norm.normalize(arena, neg, true);
            let abstracted = frames_abstracted || ctx.norm.abstracted;
            let AssumptionCtx {
                bools,
                constraints,
                sat,
                or_seeds,
                ..
            } = ctx;
            // The negated goal is searched first (it pops last-in), then
            // the assumptions' disjunctive residues — the same relative
            // order the monolithic path processes `[assumptions…, ¬goal]`.
            let mut pending: Vec<&Formula> = or_seeds.iter().collect();
            pending.push(&goal_f);
            let mut search =
                TrailSearch::new(pending, bools, constraints, sat, deadline, calls_left);
            let outcome = search.run();
            // Whatever happened — model, unsat, budget trip — the shared
            // base must survive for the next query under these frames.
            search.unwind_all();
            let search_spent = search.theory_calls;
            let counters = search.counters();
            drop(actx);

            if let Some(state) = self.budget.borrow_mut().as_mut() {
                if let Some(left) = state.calls_left.as_mut() {
                    *left = left.saturating_sub(search_spent);
                }
            }
            let mut stats = self.stats.get();
            stats.checks += 1;
            stats.theory_calls += frame_spent + search_spent;
            stats.saturation_reuses += frame_reuses;
            counters.fold_into(&mut stats);
            stats.assumption_queries += 1;
            self.stats.set(stats);

            match outcome {
                SearchOutcome::Exhausted(reason) => {
                    self.mark_exhausted(reason);
                    exhausted_placeholder()
                }
                SearchOutcome::Sat(reals, model_bools) => CheckResult::Sat(Model {
                    reals: reals
                        .into_iter()
                        .map(|(k, v)| (k.as_str().to_string(), v))
                        .collect(),
                    bools: model_bools
                        .into_iter()
                        .map(|(k, v)| (k.as_str().to_string(), v))
                        .collect(),
                    possibly_spurious: abstracted,
                }),
                SearchOutcome::Unsat => CheckResult::Unsat,
            }
        };

        if shadowdp_obs::armed() {
            query_hist(false).observe(start.elapsed().as_micros() as u64);
        }
        if let Some(fp) = key {
            if self.exhausted.borrow().is_none() {
                self.memo.insert(fp, out.clone());
            }
        }
        out
    }

    /// Ensures every open frame is materialized into the shared context,
    /// accumulating theory calls into `spent` (and incremental pushes onto
    /// a live saturation into `reuses`) for the caller to charge.
    ///
    /// # Errors
    ///
    /// Returns the budget-trip reason if the budget runs out mid-frame;
    /// the partially materialized frame is rolled back and left
    /// unmaterialized, so a later query under a reset budget retries it
    /// cleanly.
    fn materialize_frames(
        &self,
        arena: &mut TermArena,
        spent: &mut u64,
        reuses: &mut u64,
    ) -> Result<(), String> {
        let mut frames = self.frames.borrow_mut();
        let mut actx = self.actx.borrow_mut();
        let ctx = actx.get_or_insert_with(AssumptionCtx::default);
        for frame in frames.iter_mut() {
            if frame.materialized.is_some() {
                continue;
            }
            let mut undo = FrameUndo::default();
            let mut tripped = None;
            'frame: for t in &frame.terms {
                ctx.norm.abstracted = false;
                let f = ctx.norm.normalize(arena, *t, true);
                undo.abstracted |= ctx.norm.abstracted;
                // Absorb the conjunctive skeleton; disjunctive residue is
                // seeded into every query's search instead (only
                // conjunctive facts may enter the shared saturation).
                let mut stack = vec![f];
                while let Some(f) = stack.pop() {
                    match f {
                        Formula::Const(true) => {}
                        Formula::Const(false) => {
                            undo.inconsistent = true;
                            break 'frame;
                        }
                        Formula::And(xs) => stack.extend(xs),
                        Formula::BLit(name, val) => match ctx.bools.get(&name) {
                            Some(existing) if *existing != val => {
                                undo.inconsistent = true;
                                break 'frame;
                            }
                            Some(_) => {}
                            None => {
                                ctx.bools.insert(name, val);
                                undo.bound.push(name);
                            }
                        },
                        Formula::Atom(c) => {
                            if let Some(reason) = self.budget_tripped(*spent) {
                                tripped = Some(reason);
                                break 'frame;
                            }
                            *spent += 1;
                            if !ctx.sat.is_empty() {
                                *reuses += 1;
                            }
                            let (ok, u) = ctx.sat.push(&c);
                            ctx.constraints.push(c);
                            undo.sat_undos.push(u);
                            undo.constraints_added += 1;
                            if !ok {
                                undo.inconsistent = true;
                                break 'frame;
                            }
                        }
                        or @ Formula::Or(_) => {
                            ctx.or_seeds.push(or);
                            undo.seeds_added += 1;
                        }
                    }
                }
            }
            if let Some(reason) = tripped {
                strip_frame(ctx, undo);
                return Err(reason);
            }
            frame.materialized = Some(undo);
        }
        Ok(())
    }

    /// Whether the installed budget would refuse one more theory call
    /// after `already_spent` calls in the current operation — the
    /// out-of-search twin of [`TrailSearch::out_of_budget`], used while
    /// materializing assumption frames.
    fn budget_tripped(&self, already_spent: u64) -> Option<String> {
        let budget = self.budget.borrow();
        let state = budget.as_ref()?;
        if let Some(cap) = state.calls_left {
            if already_spent >= cap {
                return Some(format!("theory-call budget exhausted (cap {cap})"));
            }
        }
        if let Some(deadline) = state.deadline {
            if Instant::now() >= deadline {
                return Some("deadline exceeded".to_string());
            }
        }
        None
    }
}

/// One [`Solver::push_assumptions`] frame: the recorded terms, plus the
/// undo record once the frame has been materialized into the shared
/// [`AssumptionCtx`].
#[derive(Debug)]
struct AssumptionFrame {
    terms: Vec<Term>,
    materialized: Option<FrameUndo>,
}

/// Everything needed to strip one materialized frame back out of the
/// shared context.
#[derive(Debug, Default)]
struct FrameUndo {
    /// Booleans this frame bound (undo removes them).
    bound: Vec<Symbol>,
    /// Saturation undo tokens, popped in reverse push order.
    sat_undos: Vec<SatUndo>,
    /// Constraints this frame appended (undo truncates).
    constraints_added: usize,
    /// Disjunctive residues this frame contributed to the context's
    /// `or_seeds`.
    seeds_added: usize,
    /// Whether normalizing this frame abstracted a non-linear atom; taints
    /// every refutation model found under it as possibly spurious.
    abstracted: bool,
    /// Whether the frame's conjunctive part is itself inconsistent: every
    /// goal under it is vacuously entailed.
    inconsistent: bool,
}

/// The shared incremental state pushed queries run against: one normalizer
/// (abstraction symbols stay canonical across the base and every goal),
/// the base bool bindings, the base constraint stack with its live
/// saturation, and the disjunctive residues of the assumptions, which must
/// re-enter each query's search — only conjunctive structure can live in
/// the shared saturation.
#[derive(Debug, Default)]
struct AssumptionCtx {
    norm: Normalizer,
    bools: BoolModel,
    constraints: Vec<Constraint>,
    sat: Saturation,
    or_seeds: Vec<Formula>,
}

/// Rolls one frame's materialized state back out of the context (LIFO:
/// the frame being stripped must be the most recently materialized one
/// still present).
fn strip_frame(ctx: &mut AssumptionCtx, undo: FrameUndo) {
    for u in undo.sat_undos.into_iter().rev() {
        ctx.sat.pop(u);
    }
    let keep = ctx.constraints.len() - undo.constraints_added;
    ctx.constraints.truncate(keep);
    for name in &undo.bound {
        ctx.bools.remove(name);
    }
    let keep = ctx.or_seeds.len() - undo.seeds_added;
    ctx.or_seeds.truncate(keep);
}

/// Domain-separation tag for assumption-set memo keys: structural
/// fingerprints are FNV chains over node tags, this family is a scrambled
/// multiset sum — the tag keeps the two key spaces from ever starting from
/// the same offset.
const ASSUMPTION_KEY_TAG: u128 = 0x9e3779b97f4a7c15_f39cc0605cedc835;

/// A full-avalanche 128-bit finalizer (two murmur3-style 64-bit rounds
/// with cross-feeding halves). Applied to each assumption fingerprint
/// before summing: a raw wrapping sum of structured values would admit
/// easy accidental collisions ({a+δ, b} vs {a, b+δ}); summing scrambled
/// values is the standard multiset-hash construction, collision-resistant
/// to the same 128-bit standard the fingerprints themselves are trusted
/// for.
#[inline]
fn scramble(x: u128) -> u128 {
    #[inline]
    fn fmix64(mut k: u64) -> u64 {
        k ^= k >> 33;
        k = k.wrapping_mul(0xff51afd7ed558ccd);
        k ^= k >> 33;
        k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
        k ^= k >> 33;
        k
    }
    let lo = fmix64(x as u64);
    let hi = fmix64((x >> 64) as u64 ^ lo);
    ((hi as u128) << 64) | fmix64(lo ^ hi) as u128
}

/// The memo key of an assumption-set entailment query: a commutative hash
/// of the assumption fingerprint multiset, mixed with the assumption count
/// and the goal's fingerprint. Insensitive to assumption order and
/// grouping by construction; different multisets or goals key apart up to
/// 128-bit collisions (the same standard the structural fingerprints carry).
fn assumption_set_key(arena: &TermArena, assumptions: &[Term], goal: Term) -> Fingerprint {
    let mut sum: u128 = 0;
    for t in assumptions {
        sum = sum.wrapping_add(scramble(arena.fingerprint(*t).0));
    }
    let mut h = ASSUMPTION_KEY_TAG;
    h = scramble(h ^ sum);
    h = scramble(h ^ assumptions.len() as u128);
    h = scramble(h ^ arena.fingerprint(goal).0);
    Fingerprint(h)
}

/// The placeholder result a budget-exhausted (or fault-degraded) solve
/// returns: an empty model flagged possibly-spurious. Callers already
/// treat spurious `Sat` as "unknown, never proved", so the degradation is
/// sound by construction.
fn exhausted_placeholder() -> CheckResult {
    CheckResult::Sat(Model {
        reals: BTreeMap::new(),
        bools: BTreeMap::new(),
        possibly_spurious: true,
    })
}

type RealModel = BTreeMap<Symbol, Rat>;
type BoolModel = BTreeMap<Symbol, bool>;

/// Outcome of one iterative tableau search.
#[derive(Debug)]
enum SearchOutcome {
    /// A model: the final full saturation's real assignment plus the bound
    /// booleans.
    Sat(RealModel, BoolModel),
    /// No branch satisfies the formula.
    Unsat,
    /// The budget tripped mid-search. A first-class outcome, never
    /// conflated with a model: the old recursive engine unwound a trip as
    /// `Some(empty model)` through every branch point, which only stayed
    /// sound because one caller knew to replace it — now the type makes
    /// the distinction.
    Exhausted(String),
}

/// Trail/saturation counters one search contributes to [`SolverStats`].
#[derive(Clone, Copy, Debug)]
struct SearchCounters {
    trail_ops: u64,
    max_trail_depth: u64,
    saturation_reuses: u64,
    resaturations: u64,
}

impl SearchCounters {
    fn fold_into(self, stats: &mut SolverStats) {
        stats.trail_ops += self.trail_ops;
        stats.max_trail_depth = stats.max_trail_depth.max(self.max_trail_depth);
        stats.saturation_reuses += self.saturation_reuses;
        stats.resaturations += self.resaturations;
    }
}

/// The iterative trail-backed tableau search.
///
/// Replaces the seed's recursive clone-per-disjunct engine (kept verbatim
/// as [`reference`] for differential testing): the pending worklist,
/// boolean model, constraint stack, and incremental [`Saturation`] are
/// mutated in place; every mutation is recorded on the [`Trail`]; and a
/// disjunction opens a decision level instead of cloning `pending`.
/// Backtracking undoes ops to the level mark — proportional to the failed
/// branch, with no allocation — and the loop never recurses, so formula
/// depth is bounded by the heap, not the thread stack.
///
/// Exploration order, theory-call counts, and the final model are all
/// byte-identical to the recursive engine: atoms run one incremental
/// cascade each (where the old engine re-saturated the whole constraint
/// stack), and the single full saturation at the end reconstructs the
/// model from the same constraint vector in the same order.
///
/// The mutable state is borrowed, not owned, so one engine serves both the
/// monolithic path (fresh local state per query) and the pushed-assumption
/// path (shared base under [`Solver::push_assumptions`] frames, fully
/// unwound by [`TrailSearch::unwind_all`] after each query).
struct TrailSearch<'f, 'a> {
    pending: Vec<&'f Formula>,
    bools: &'a mut BoolModel,
    constraints: &'a mut Vec<Constraint>,
    sat: &'a mut Saturation,
    trail: Trail<'f>,
    decisions: Vec<Decision<'f>>,
    theory_calls: u64,
    saturation_reuses: u64,
    resaturations: u64,
    deadline: Option<Instant>,
    calls_left: Option<u64>,
}

/// One open disjunction: its alternatives and the next one to try.
struct Decision<'f> {
    alts: &'f [Formula],
    next: usize,
}

impl<'f, 'a> TrailSearch<'f, 'a> {
    fn new(
        pending: Vec<&'f Formula>,
        bools: &'a mut BoolModel,
        constraints: &'a mut Vec<Constraint>,
        sat: &'a mut Saturation,
        deadline: Option<Instant>,
        calls_left: Option<u64>,
    ) -> TrailSearch<'f, 'a> {
        TrailSearch {
            pending,
            bools,
            constraints,
            sat,
            trail: Trail::new(),
            decisions: Vec::new(),
            theory_calls: 0,
            saturation_reuses: 0,
            resaturations: 0,
            deadline,
            calls_left,
        }
    }

    /// The counters this search feeds into [`SolverStats`].
    fn counters(&self) -> SearchCounters {
        SearchCounters {
            trail_ops: self.trail.ops_total(),
            max_trail_depth: self.trail.max_depth(),
            saturation_reuses: self.saturation_reuses,
            resaturations: self.resaturations,
        }
    }

    /// Whether the budget has run out, checked before every theory step
    /// (same points and same order as the recursive engine, so trip
    /// timing — and therefore every budget-pinning test — is preserved).
    fn out_of_budget(&self) -> Option<String> {
        if let Some(cap) = self.calls_left {
            if self.theory_calls >= cap {
                return Some(format!("theory-call budget exhausted (cap {cap})"));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some("deadline exceeded".to_string());
            }
        }
        None
    }

    /// Runs the search to completion.
    fn run(&mut self) -> SearchOutcome {
        loop {
            let Some(f) = self.pending.pop() else {
                // All boolean structure satisfied. The incremental cascade
                // already proved the conjunction consistent; one full
                // saturation over the (order-preserved) constraint stack
                // reconstructs the model exactly as the recursive engine's
                // final check did.
                if let Some(reason) = self.out_of_budget() {
                    return SearchOutcome::Exhausted(reason);
                }
                self.theory_calls += 1;
                self.resaturations += 1;
                match check_sat(self.constraints) {
                    FmResult::Sat(reals) => {
                        return SearchOutcome::Sat(reals, self.bools.clone());
                    }
                    // Unreachable while the incremental cascade is
                    // complete; treated as a conflict defensively rather
                    // than trusting an inconsistent model.
                    FmResult::Unsat => {
                        if !self.backtrack() {
                            return SearchOutcome::Unsat;
                        }
                        continue;
                    }
                }
            };
            self.trail.record(TrailOp::PopPending(f));
            match f {
                Formula::Const(true) => {}
                Formula::Const(false) => {
                    if !self.backtrack() {
                        return SearchOutcome::Unsat;
                    }
                }
                Formula::And(xs) => {
                    for x in xs {
                        self.pending.push(x);
                    }
                    self.trail.record(TrailOp::PushPending(xs.len()));
                }
                Formula::BLit(name, val) => match self.bools.get(name) {
                    Some(existing) if existing != val => {
                        if !self.backtrack() {
                            return SearchOutcome::Unsat;
                        }
                    }
                    Some(_) => {}
                    None => {
                        self.bools.insert(*name, *val);
                        self.trail.record(TrailOp::BindBool(*name));
                    }
                },
                Formula::Atom(c) => {
                    if let Some(reason) = self.out_of_budget() {
                        return SearchOutcome::Exhausted(reason);
                    }
                    self.theory_calls += 1;
                    if !self.sat.is_empty() {
                        self.saturation_reuses += 1;
                    }
                    let (ok, undo) = self.sat.push(c);
                    self.constraints.push(c.clone());
                    self.trail.record(TrailOp::PushConstraint(undo));
                    if !ok && !self.backtrack() {
                        return SearchOutcome::Unsat;
                    }
                }
                Formula::Or(xs) => {
                    if xs.is_empty() {
                        // The normalizer never emits an empty Or, but a
                        // hand-built one is an empty disjunction: false.
                        if !self.backtrack() {
                            return SearchOutcome::Unsat;
                        }
                        continue;
                    }
                    // The PopPending above sits *below* the level mark, so
                    // unwinding an enclosing decision restores the whole
                    // disjunction to pending for re-exploration — the same
                    // state the recursive engine's pending clone carried.
                    self.trail.push_level();
                    self.decisions.push(Decision { alts: xs, next: 1 });
                    self.pending.push(&xs[0]);
                    self.trail.record(TrailOp::PushPending(1));
                }
            }
        }
    }

    /// Unwinds to the innermost decision with an untried alternative and
    /// enters it; `false` when every branch is exhausted (the query is
    /// unsat).
    fn backtrack(&mut self) -> bool {
        loop {
            if self.decisions.is_empty() {
                return false;
            }
            let mark = self.trail.pop_level();
            while self.trail.len() > mark {
                let op = self.trail.pop_op().expect("ops above the level mark");
                self.undo(op);
            }
            let d = self.decisions.last_mut().expect("a decision per level");
            if d.next < d.alts.len() {
                let alt = &d.alts[d.next];
                d.next += 1;
                self.trail.push_level();
                self.pending.push(alt);
                self.trail.record(TrailOp::PushPending(1));
                return true;
            }
            self.decisions.pop();
        }
    }

    /// Applies one op's inverse.
    fn undo(&mut self, op: TrailOp<'f>) {
        match op {
            TrailOp::PopPending(f) => self.pending.push(f),
            TrailOp::PushPending(n) => {
                let keep = self.pending.len() - n;
                self.pending.truncate(keep);
            }
            TrailOp::BindBool(name) => {
                self.bools.remove(&name);
            }
            TrailOp::PushConstraint(undo) => {
                self.constraints.pop();
                self.sat.pop(undo);
            }
        }
    }

    /// Undoes everything — every open level, then every remaining op —
    /// restoring the borrowed state to exactly what it was at
    /// construction. The pushed-assumption path runs this after every
    /// query so the shared base survives intact.
    fn unwind_all(&mut self) {
        while self.trail.depth() > 0 {
            self.trail.pop_level();
        }
        while let Some(op) = self.trail.pop_op() {
            self.undo(op);
        }
        self.decisions.clear();
    }
}

/// The seed's recursive clone-per-disjunct tableau engine, kept verbatim
/// (minus the budget plumbing, which the differential tests do not
/// exercise) as the oracle for the trail core: identical verdicts, and the
/// trail engine may never do *more* theory work.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    struct Search {
        theory_calls: u64,
    }

    impl Search {
        fn solve(
            &mut self,
            mut pending: Vec<Formula>,
            constraints: &mut Vec<Constraint>,
            bools: &mut BoolModel,
        ) -> Option<(RealModel, BoolModel)> {
            while let Some(f) = pending.pop() {
                match f {
                    Formula::Const(true) => {}
                    Formula::Const(false) => return None,
                    Formula::And(xs) => pending.extend(xs),
                    Formula::BLit(name, val) => match bools.get(&name) {
                        Some(existing) if *existing != val => return None,
                        Some(_) => {}
                        None => {
                            bools.insert(name, val);
                            let result = self.solve(pending, constraints, bools);
                            if result.is_none() {
                                bools.remove(&name);
                            }
                            return result;
                        }
                    },
                    Formula::Atom(c) => {
                        constraints.push(c);
                        self.theory_calls += 1;
                        if let FmResult::Unsat = check_sat(constraints) {
                            constraints.pop();
                            return None;
                        }
                        let result = self.solve(pending, constraints, bools);
                        if result.is_none() {
                            constraints.pop();
                        }
                        return result;
                    }
                    Formula::Or(xs) => {
                        for x in xs {
                            let mut branch_pending = pending.clone();
                            branch_pending.push(x);
                            if let Some(model) = self.solve(branch_pending, constraints, bools) {
                                return Some(model);
                            }
                        }
                        return None;
                    }
                }
            }
            self.theory_calls += 1;
            match check_sat(constraints) {
                FmResult::Sat(reals) => Some((reals, bools.clone())),
                FmResult::Unsat => None,
            }
        }
    }

    /// Solves normalized formulas with the recursive engine; returns the
    /// model (if any) and the theory-call count.
    pub(crate) fn solve_formulas(formulas: Vec<Formula>) -> (Option<(RealModel, BoolModel)>, u64) {
        let mut search = Search { theory_calls: 0 };
        let result = search.solve(formulas, &mut Vec::new(), &mut BTreeMap::new());
        (result, search.theory_calls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::real_var("x")
    }

    fn y() -> Term {
        Term::real_var("y")
    }

    #[test]
    fn sat_with_model() {
        let s = Solver::new();
        let r = s.check(&[
            x().ge(Term::int(1)),
            x().le(Term::int(5)),
            y().eq_num(x().add(Term::int(1))),
        ]);
        match r {
            CheckResult::Sat(m) => {
                assert!(m.real("x") >= Rat::ONE && m.real("x") <= Rat::int(5));
                assert_eq!(m.real("y"), m.real("x") + Rat::ONE);
                assert!(!m.possibly_spurious);
            }
            CheckResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn unsat_interval() {
        let s = Solver::new();
        assert_eq!(
            s.check(&[x().le(Term::int(1)), x().ge(Term::int(2))]),
            CheckResult::Unsat
        );
    }

    #[test]
    fn prove_scaling() {
        let s = Solver::new();
        // x >= 1 ⊢ 2x > 1
        assert!(s
            .prove(
                &[x().ge(Term::int(1))],
                &Term::int(2).mul(x()).gt(Term::int(1))
            )
            .is_proved());
        // x >= 0 ⊬ x > 0; counterexample x = 0
        let r = s.prove(&[x().ge(Term::int(0))], &x().gt(Term::int(0)));
        let m = r.counterexample().expect("definite counterexample");
        assert_eq!(m.real("x"), Rat::ZERO);
    }

    #[test]
    fn disjunction_branches() {
        let s = Solver::new();
        // (x <= -1 ∨ x >= 1) ∧ x >= 0 forces x >= 1
        let disj = x().le(Term::int(-1)).or(x().ge(Term::int(1)));
        let r = s.check(&[disj, x().ge(Term::int(0))]);
        match r {
            CheckResult::Sat(m) => assert!(m.real("x") >= Rat::ONE),
            CheckResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn abs_reasoning() {
        let s = Solver::new();
        // |x| <= 1 ⊢ x <= 1
        assert!(s.entails(&[x().abs().le(Term::int(1))], &x().le(Term::int(1))));
        // |x| <= 1 ⊬ x >= 0
        assert!(!s.entails(&[x().abs().le(Term::int(1))], &x().ge(Term::int(0))));
        // ⊢ |x| >= x
        assert!(s.entails(&[], &x().abs().ge(x())));
        // ⊢ |x + y| <= |x| + |y| (triangle inequality)
        let lhs = x().add(y()).abs();
        let rhs = x().abs().add(y().abs());
        assert!(s.entails(&[], &lhs.le(rhs)));
    }

    #[test]
    fn boolean_variables() {
        let s = Solver::new();
        let p = Term::bool_var("p");
        let q = Term::bool_var("q");
        // p ∧ (p => q) ⊢ q
        assert!(s.entails(&[p, p.implies(q)], &q));
        // p ∨ q, ¬p ⊢ q
        assert!(s.entails(&[p.or(q), p.not()], &q));
        // p ⊬ q
        assert!(!s.entails(&[p], &q));
    }

    #[test]
    fn ite_in_numeric_position() {
        let s = Solver::new();
        let b = Term::bool_var("b");
        // (b ? 2 : 0) <= 2 is valid
        let t = Term::ite(b, Term::int(2), Term::int(0)).le(Term::int(2));
        assert!(s.entails(&[], &t));
        // (b ? 2 : 0) >= 1 ⊢ b
        let hyp = Term::ite(b, Term::int(2), Term::int(0)).ge(Term::int(1));
        assert!(s.entails(&[hyp], &b));
    }

    #[test]
    fn nonlinear_abstraction_is_sound_not_complete() {
        let s = Solver::new();
        // x*x >= 0 is valid over the reals but the solver abstracts it:
        // the refutation model must be flagged possibly spurious.
        let goal = x().mul(x()).ge(Term::int(0));
        match s.prove(&[], &goal) {
            ProveResult::Proved => panic!("abstraction should lose this"),
            ProveResult::Refuted(m) => assert!(m.possibly_spurious),
        }
        // ... and counterexample() must refuse to hand it out.
        assert!(s.prove(&[], &goal).counterexample().is_none());
    }

    #[test]
    fn equivalence_helper() {
        let s = Solver::new();
        let a = x().gt(Term::int(0));
        let b = Term::int(0).lt(x());
        assert!(s.equivalent(&[], &a, &b));
        let c = x().ge(Term::int(0));
        assert!(!s.equivalent(&[], &a, &c));
    }

    #[test]
    fn iff_with_offsets_matches_todot_sideconditions() {
        // The (T-ODot) check for NoisyMax's guard under the aligned
        // distances: q + 2 > bq + 2 <=> q > bq (shifting both sides by the
        // same distance preserves the comparison).
        let s = Solver::new();
        let q = Term::real_var("q");
        let bq = Term::real_var("bq");
        let lhs = q.add(Term::int(2)).gt(bq.add(Term::int(2)));
        let rhs = q.gt(bq);
        assert!(s.equivalent(&[], &lhs, &rhs));
    }

    #[test]
    fn stats_accumulate() {
        let s = Solver::new();
        let _ = s.check(&[x().le(Term::int(0))]);
        let _ = s.prove(&[], &x().le(x()));
        let st = s.stats();
        assert_eq!(st.checks, 2);
        assert_eq!(st.proves, 1);
        assert!(st.theory_calls >= 1);
    }

    #[test]
    fn strict_vs_weak_boundaries() {
        let s = Solver::new();
        // x > 1 ∧ x < 1 unsat; x >= 1 ∧ x <= 1 sat with x = 1
        assert!(!s
            .check(&[x().gt(Term::int(1)), x().lt(Term::int(1))])
            .is_sat());
        match s.check(&[x().ge(Term::int(1)), x().le(Term::int(1))]) {
            CheckResult::Sat(m) => assert_eq!(m.real("x"), Rat::ONE),
            CheckResult::Unsat => panic!(),
        }
    }

    #[test]
    fn repeated_queries_hit_the_memo() {
        let s = Solver::new();
        let hyp = x().ge(Term::int(1));
        let goal = Term::int(2).mul(x()).gt(Term::int(1));
        assert!(s.prove(&[hyp], &goal).is_proved());
        let before = s.stats();
        assert_eq!(before.cache_hits, 0);
        for _ in 0..5 {
            assert!(s.prove(&[hyp], &goal).is_proved());
        }
        let after = s.stats();
        assert_eq!(after.cache_hits, 5);
        // No new theory work for the cached queries.
        assert_eq!(after.theory_calls, before.theory_calls);
    }

    #[test]
    fn memo_respects_distinct_formulas() {
        let s = Solver::new();
        assert!(s.check(&[x().le(Term::int(1))]).is_sat());
        // A different bound must not be answered from the cache entry.
        assert!(s.check(&[x().le(Term::int(1)), x().ge(Term::int(2))]) == CheckResult::Unsat);
        assert_eq!(s.stats().cache_hits, 0);
    }

    #[test]
    fn sharded_memo_len_counts_across_shards() {
        // Distinct bounds produce distinct fingerprints that scatter over
        // the shards; len/is_empty must aggregate all of them.
        let s = Solver::new();
        assert!(s.memo().is_empty());
        for i in 0..64 {
            let _ = s.check(&[x().le(Term::int(i))]);
        }
        assert_eq!(s.memo().len(), 64);
        assert!(!s.memo().is_empty());
        // Every one of them is answerable again (i.e. nothing was lost to
        // a mis-indexed shard).
        for i in 0..64 {
            let _ = s.check(&[x().le(Term::int(i))]);
        }
        let st = s.stats();
        assert_eq!(st.cache_hits, 64, "{st:?}");
    }

    #[test]
    fn snapshot_absorb_transfers_every_entry() {
        let warm = Solver::new();
        for i in 0..32 {
            let _ = warm.check(&[x().ge(Term::int(i))]);
        }
        let snap = warm.memo().snapshot();
        assert_eq!(snap.len(), 32);
        // Deterministic order regardless of shard layout.
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));

        let cold = Solver::new();
        cold.memo().absorb(snap);
        assert_eq!(cold.memo().len(), 32);
        for i in 0..32 {
            let _ = cold.check(&[x().ge(Term::int(i))]);
        }
        let st = cold.stats();
        assert_eq!(st.cache_hits, 32, "{st:?}");
        assert_eq!(st.theory_calls, 0, "{st:?}");
    }

    #[test]
    fn absorb_never_overwrites_live_entries() {
        let s = Solver::new();
        let _ = s.check(&[x().le(Term::int(1))]);
        let snap = s.memo().snapshot();
        let (fp, live) = (snap[0].0, snap[0].1.clone());
        // A (hypothetically corrupt) snapshot entry for the same key must
        // not clobber the live verdict.
        s.memo().absorb([(fp, CheckResult::Unsat)]);
        assert_eq!(s.memo().get(fp), Some(live));
    }

    #[test]
    fn without_memo_never_hits() {
        let s = Solver::without_memo();
        let t = x().le(Term::int(0));
        for _ in 0..3 {
            assert!(s.check(std::slice::from_ref(&t)).is_sat());
        }
        let st = s.stats();
        assert_eq!(st.cache_hits, 0);
        assert!(st.theory_calls >= 3);
        assert!(
            s.touched_fingerprints().is_empty(),
            "memo-less solvers compute no fingerprints to touch"
        );
    }

    #[test]
    fn drain_dirty_exports_only_fresh_solves_once() {
        let s = Solver::new();
        for i in 0..8 {
            let _ = s.check(&[x().le(Term::int(i))]);
        }
        let first = s.memo().drain_dirty();
        assert_eq!(first.len(), 8);
        assert!(first.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
        // Drained entries stay in the table but are no longer dirty.
        assert_eq!(s.memo().len(), 8);
        assert!(s.memo().drain_dirty().is_empty());

        // Cache hits do not re-dirty; only new solves do.
        let _ = s.check(&[x().le(Term::int(0))]);
        let _ = s.check(&[x().le(Term::int(99))]);
        let delta = s.memo().drain_dirty();
        assert_eq!(delta.len(), 1, "{delta:?}");
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn absorbed_entries_are_never_dirty() {
        let warm = Solver::new();
        for i in 0..4 {
            let _ = warm.check(&[x().ge(Term::int(i))]);
        }
        let snap = warm.memo().snapshot();

        // A freshly warmed table has nothing to flush: its entries came
        // *from* persistence.
        let cold = QueryMemo::default();
        cold.absorb(snap.clone());
        assert_eq!(cold.len(), 4);
        assert!(cold.drain_dirty().is_empty());

        // A mixed table drains only the live solves.
        let s = Solver::new();
        let _ = s.check(&[x().le(Term::int(-3))]);
        s.memo().absorb(snap);
        let delta = s.memo().drain_dirty();
        assert_eq!(delta.len(), 1, "{delta:?}");
    }

    #[test]
    fn prove_assuming_agrees_with_prove() {
        let s = Solver::new();
        let hyp = x().ge(Term::int(1));
        let goal = Term::int(2).mul(x()).gt(Term::int(1));
        assert!(s.prove_assuming(&[hyp], &goal).is_proved());
        // x >= 0 ⊬ x > 0, with the counterexample surfaced the same way.
        let r = s.prove_assuming(&[x().ge(Term::int(0))], &x().gt(Term::int(0)));
        let m = r.counterexample().expect("definite counterexample");
        assert_eq!(m.real("x"), Rat::ZERO);
        // The empty assumption set proves tautologies.
        assert!(s.entails_assuming(&[], &x().abs().ge(x())));
    }

    #[test]
    fn assumption_key_is_order_and_grouping_insensitive() {
        let s = Solver::new();
        let a = x().ge(Term::int(1));
        let b = y().ge(Term::int(2));
        let c = x().le(Term::int(10));
        let goal = x().add(y()).ge(Term::int(3));
        assert!(s.entails_assuming(&[a, b, c], &goal));
        let fresh = s.stats();
        assert_eq!(fresh.assumption_queries, 1);
        assert_eq!(fresh.assumption_hits, 0);
        // Any permutation of the same multiset is a hit.
        for perm in [[c, b, a], [b, a, c], [a, c, b]] {
            assert!(s.entails_assuming(&perm, &goal));
        }
        let st = s.stats();
        assert_eq!(st.assumption_queries, 4);
        assert_eq!(st.assumption_hits, 3, "{st:?}");
        assert_eq!(st.theory_calls, fresh.theory_calls, "hits do no theory");
        // A shrunk assumption set keys apart (it is a different obligation).
        assert!(s.entails_assuming(&[a, b], &goal));
        assert_eq!(s.stats().assumption_hits, 3);
        // ... and so does the same multiset against a different goal.
        assert!(s.entails_assuming(&[a, b, c], &x().ge(Term::int(1))));
        assert_eq!(s.stats().assumption_hits, 3);
    }

    #[test]
    fn assumption_keys_do_not_alias_plain_keys() {
        // The same semantic query through `prove` and `prove_assuming`
        // lives under two different memo keys (monolithic fingerprint vs
        // domain-separated multiset hash): neither path may be answered by
        // the other's entry, because the plain key is order-sensitive and
        // the multiset key is not — aliasing would let one family's policy
        // leak into the other.
        let s = Solver::new();
        let hyp = x().ge(Term::int(1));
        let goal = Term::int(2).mul(x()).gt(Term::int(1));
        assert!(s.prove(&[hyp], &goal).is_proved());
        assert!(s.prove_assuming(&[hyp], &goal).is_proved());
        let st = s.stats();
        assert_eq!(st.cache_hits, 0, "{st:?}");
        assert_eq!(s.memo().len(), 2);
    }

    #[test]
    fn assumption_entries_transfer_through_snapshot_absorb() {
        // The persistence contract: assumption-keyed verdicts ride the
        // same snapshot/absorb/drain machinery as plain ones, so a daemon
        // restart (or a candidate-set variation in a later submission)
        // re-serves them without fresh theory work.
        let warm = Solver::new();
        let a = x().ge(Term::int(1));
        let b = y().le(Term::int(5));
        let goal = x().sub(y()).ge(Term::int(-4));
        assert!(warm.entails_assuming(&[a, b], &goal));
        let snap = warm.memo().snapshot();
        assert_eq!(snap.len(), 1);
        let dirty = warm.memo().drain_dirty();
        assert_eq!(dirty.len(), 1);

        let cold = Solver::new();
        cold.memo().absorb(snap);
        // Re-asked in the other order, from a different arena: still a hit.
        assert!(cold.entails_assuming(&[b, a], &goal));
        let st = cold.stats();
        assert_eq!(st.assumption_hits, 1, "{st:?}");
        assert_eq!(st.theory_calls, 0, "{st:?}");
        // The hit is recorded as a dependency for store compaction.
        assert_eq!(cold.touched_fingerprints(), vec![dirty[0].0]);
    }

    #[test]
    fn prove_assuming_without_memo_never_hits() {
        let s = Solver::without_memo();
        let hyp = x().ge(Term::int(1));
        let goal = x().ge(Term::int(0));
        for _ in 0..3 {
            assert!(s.prove_assuming(&[hyp], &goal).is_proved());
        }
        let st = s.stats();
        assert_eq!(st.assumption_queries, 3);
        assert_eq!(st.assumption_hits, 0);
        assert!(st.theory_calls >= 3);
        assert!(s.touched_fingerprints().is_empty());
    }

    #[test]
    fn equal_sum_multisets_key_apart() {
        // Same elements distributed differently — {a, a, b} vs {a, b, b} vs
        // {a, b} — and swapped pairs with the same underlying atoms must
        // all key apart (a raw unscrambled sum would conflate several of
        // these shapes far too easily).
        let s = Solver::new();
        let a = x().ge(Term::int(1));
        let b = y().ge(Term::int(1));
        let goal = x().add(y()).ge(Term::int(2));
        assert!(s.entails_assuming(&[a, a, b], &goal));
        assert!(s.entails_assuming(&[a, b, b], &goal));
        assert!(s.entails_assuming(&[a, b], &goal));
        assert_eq!(
            s.stats().assumption_hits,
            0,
            "distinct multisets must not alias: {:?}",
            s.stats()
        );
        assert_eq!(s.memo().len(), 3);
    }

    #[test]
    fn theory_call_budget_trips_sticky_and_sound() {
        let s = Solver::new();
        s.set_budget(Budget::with_theory_calls(1));
        // The first query burns the single allowed call and trips.
        let conj = [
            x().ge(Term::int(0)),
            y().ge(Term::int(0)),
            x().add(y()).le(Term::int(10)),
        ];
        let r = s.check(&conj);
        match r {
            CheckResult::Sat(m) => assert!(m.possibly_spurious, "exhausted result is spurious"),
            CheckResult::Unsat => panic!("exhaustion must never produce Unsat"),
        }
        let reason = s.exhausted().expect("budget tripped");
        assert!(reason.contains("theory-call"), "{reason}");

        // Sticky: a later prove cannot claim Proved, even of a tautology.
        match s.prove(&[], &x().le(x())) {
            ProveResult::Proved => panic!("exhausted solver must never prove"),
            ProveResult::Refuted(m) => assert!(m.possibly_spurious),
        }

        // Nothing was memoized: a reset budget re-solves for real.
        assert_eq!(s.memo().len(), 0, "no partial verdicts in the memo");
        assert!(s.memo().drain_dirty().is_empty());
        s.clear_budget();
        assert!(s.exhausted().is_none());
        assert!(s.check(&conj).is_sat());
        assert!(s.prove(&[], &x().le(x())).is_proved());
        assert!(!s.memo().is_empty());
    }

    #[test]
    fn expired_deadline_trips_immediately() {
        let s = Solver::new();
        s.set_budget(Budget::with_deadline(Duration::ZERO));
        let r = s.check(&[x().ge(Term::int(1))]);
        match r {
            CheckResult::Sat(m) => assert!(m.possibly_spurious),
            CheckResult::Unsat => panic!("deadline trip must never produce Unsat"),
        }
        assert!(s.exhausted().unwrap().contains("deadline"));
        assert_eq!(
            s.stats().theory_calls,
            0,
            "no theory work past the deadline"
        );
        // Replacing the budget clears exhaustion and the clock restarts.
        s.set_budget(Budget::with_deadline(Duration::from_secs(60)));
        assert!(s.exhausted().is_none());
        assert!(s.check(&[x().ge(Term::int(1))]).is_sat());
    }

    #[test]
    fn memo_hits_are_served_even_when_exhausted() {
        let s = Solver::new();
        let q = [x().le(Term::int(1)), x().ge(Term::int(2))];
        assert_eq!(s.check(&q), CheckResult::Unsat);
        s.set_budget(Budget::with_theory_calls(0));
        // A memo hit is a complete verdict and costs no theory work, so
        // even a zero-budget solver answers it exactly.
        assert_eq!(s.check(&q), CheckResult::Unsat);
        assert_eq!(s.stats().cache_hits, 1);
        assert!(s.exhausted().is_none(), "hits never trip the budget");
    }

    #[test]
    fn exhausted_assumption_queries_are_not_memoized() {
        let s = Solver::new();
        s.set_budget(Budget::with_theory_calls(0));
        let hyp = x().ge(Term::int(1));
        let goal = x().ge(Term::int(0));
        match s.prove_assuming(&[hyp], &goal) {
            ProveResult::Proved => panic!("exhausted solver must never prove"),
            ProveResult::Refuted(m) => assert!(m.possibly_spurious),
        }
        assert_eq!(s.memo().len(), 0);
        // With the budget lifted the same entailment proves and memoizes.
        s.clear_budget();
        assert!(s.prove_assuming(&[hyp], &goal).is_proved());
        assert_eq!(s.memo().len(), 1);
    }

    #[test]
    fn unlimited_budget_is_a_no_op() {
        let s = Solver::new();
        s.set_budget(Budget::default());
        assert!(s.check(&[x().ge(Term::int(1))]).is_sat());
        assert!(s.exhausted().is_none());
    }

    #[test]
    fn touched_fingerprints_cover_hits_and_fresh_solves() {
        let shared = Arc::new(QueryMemo::default());
        let warm = Solver::with_memo(shared.clone());
        let _ = warm.check(&[x().le(Term::int(1))]);

        // A second solver that only *hits* still reports the dependency.
        let hitter = Solver::with_memo(shared.clone());
        let _ = hitter.check(&[x().le(Term::int(1))]);
        let _ = hitter.check(&[x().le(Term::int(2))]);
        assert_eq!(hitter.stats().cache_hits, 1);
        let touched = hitter.touched_fingerprints();
        assert_eq!(touched.len(), 2);
        assert_eq!(
            touched,
            warm.memo()
                .snapshot()
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>()
        );

        // Repeats are deduplicated.
        let _ = hitter.check(&[x().le(Term::int(2))]);
        assert_eq!(hitter.touched_fingerprints().len(), 2);
    }

    #[test]
    fn budget_trip_mid_disjunction_is_exhausted_not_a_model() {
        // Regression for the seed engine's placeholder unwind: a budget
        // trip inside a disjunct bubbled up as `Some(empty model)` through
        // every branch point, indistinguishable from a genuine model until
        // one caller patched it over. The query below is genuinely Unsat,
        // and the budget trips on the *second* disjunct — after one branch
        // already failed — so any placeholder confusion would surface as
        // Unsat (unsound: the budget means we never finished looking) or
        // as a non-spurious model.
        let s = Solver::new();
        s.set_budget(Budget::with_theory_calls(2));
        let q = [
            x().ge(Term::int(1)).or(x().ge(Term::int(2))),
            x().le(Term::int(0)),
        ];
        match s.check(&q) {
            CheckResult::Sat(m) => {
                assert!(m.possibly_spurious, "exhausted placeholder is spurious");
                assert!(m.reals.is_empty() && m.bools.is_empty());
            }
            CheckResult::Unsat => panic!("a mid-disjunction trip must never claim Unsat"),
        }
        assert!(s.exhausted().unwrap().contains("theory-call"));
        assert_eq!(s.memo().len(), 0, "placeholders are never memoized");
        // With the budget lifted the same query resolves for real.
        s.clear_budget();
        assert_eq!(s.check(&q), CheckResult::Unsat);
    }

    #[test]
    fn trail_counters_accumulate() {
        let s = Solver::new();
        assert_eq!(s.stats().saturation_reuse_rate(), None, "no work yet");
        // One failing branch, one succeeding branch: the search opens a
        // decision level, backtracks through the trail, and retries.
        let q = [
            x().ge(Term::int(1)).or(x().le(Term::int(-1))),
            x().le(Term::int(-3)),
        ];
        assert!(s.check(&q).is_sat());
        let st = s.stats();
        assert!(st.trail_ops > 0, "{st:?}");
        assert_eq!(st.max_trail_depth, 1, "one disjunction deep: {st:?}");
        // x <= -3 starts the saturation; both disjuncts extend it live.
        assert_eq!(st.saturation_reuses, 2, "{st:?}");
        assert_eq!(st.resaturations, 1, "one full model reconstruction");
        let rate = st.saturation_reuse_rate().unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-9, "{rate}");
    }

    #[test]
    fn pushed_queries_agree_and_share_keys_with_entails_assuming() {
        let s = Solver::new();
        let a = x().ge(Term::int(1));
        let b = y().le(Term::int(5));
        let goal = x().sub(y()).ge(Term::int(-4));
        // A fresh pushed query (frames [a] and [b]) solves and memoizes.
        s.push_assumptions(&[a]);
        s.push_assumptions(&[b]);
        assert!(s.entails_pushed(&goal));
        let st = s.stats();
        assert_eq!(st.assumption_queries, 1);
        assert_eq!(st.assumption_hits, 0, "{st:?}");
        // The same obligation through the monolithic entry point is a hit:
        // keys are computed over the flattened frame multiset, insensitive
        // to frame grouping and order.
        assert!(s.entails_assuming(&[b, a], &goal));
        assert_eq!(s.stats().assumption_hits, 1, "{:?}", s.stats());
        s.pop_assumptions();
        s.pop_assumptions();
        // And back again under a different grouping of the same multiset.
        s.push_assumptions(&[b, a]);
        assert!(s.entails_pushed(&goal));
        assert_eq!(s.stats().assumption_hits, 2, "{:?}", s.stats());
        s.pop_assumptions();
    }

    #[test]
    fn warm_pushed_queries_do_no_theory_work() {
        // The warm-restart contract extends to the pushed path: frames are
        // materialized lazily, so a query answered from a persisted verdict
        // never normalizes or saturates its assumption base at all.
        let warm = Solver::new();
        let a = x().ge(Term::int(1));
        let b = y().le(Term::int(5));
        let goal = x().sub(y()).ge(Term::int(-4));
        assert!(warm.entails_assuming(&[a, b], &goal));
        let snap = warm.memo().snapshot();

        let cold = Solver::new();
        cold.memo().absorb(snap);
        cold.push_assumptions(&[a]);
        cold.push_assumptions(&[b]);
        assert!(cold.entails_pushed(&goal));
        let st = cold.stats();
        assert_eq!(st.assumption_hits, 1, "{st:?}");
        assert_eq!(st.theory_calls, 0, "{st:?}");
        cold.pop_assumptions();
        cold.pop_assumptions();
    }

    #[test]
    fn push_pop_restores_the_base_exactly() {
        let s = Solver::new();
        // An empty frame behaves like the empty assumption set: tautologies
        // and nothing else.
        s.push_assumptions(&[]);
        assert!(s.entails_pushed(&x().le(x())));
        assert!(!s.entails_pushed(&x().ge(Term::int(0))));
        s.pop_assumptions();

        s.push_assumptions(&[x().ge(Term::int(1))]);
        assert!(s.entails_pushed(&x().gt(Term::int(0))));
        assert!(!s.entails_pushed(&y().ge(Term::int(0))));
        // Narrow-Δ cycling, the Houdini pattern: push, query, pop — over
        // one shared saturated base.
        for k in 0..4 {
            s.push_assumptions(&[y().ge(Term::int(k))]);
            assert!(s.entails_pushed(&x().add(y()).ge(Term::int(k + 1))));
            s.pop_assumptions();
        }
        // The base still answers fresh queries correctly after cycling.
        assert!(s.entails_pushed(&Term::int(2).mul(x()).ge(Term::int(2))));
        // An inconsistent frame entails everything — and pops away clean.
        s.push_assumptions(&[x().le(Term::int(-5))]);
        assert!(s.entails_pushed(&y().eq_num(Term::int(42))));
        s.pop_assumptions();
        assert!(!s.entails_pushed(&y().eq_num(Term::int(42))));
        s.pop_assumptions();
    }

    #[test]
    #[should_panic(expected = "pop_assumptions without an open frame")]
    fn pop_without_frame_panics() {
        Solver::new().pop_assumptions();
    }

    #[test]
    fn exhausted_pushed_queries_are_not_memoized_and_frames_recover() {
        let s = Solver::new();
        s.push_assumptions(&[x().ge(Term::int(1))]);
        s.set_budget(Budget::with_theory_calls(0));
        // The zero budget trips while materializing the frame itself; the
        // partially built frame must be rolled back, not left half-in.
        match s.prove_pushed(&x().ge(Term::int(0))) {
            ProveResult::Proved => panic!("exhausted solver must never prove"),
            ProveResult::Refuted(m) => assert!(m.possibly_spurious),
        }
        assert!(s.exhausted().unwrap().contains("theory-call"));
        assert_eq!(s.memo().len(), 0);
        // Lifting the budget re-materializes cleanly and proves for real.
        s.clear_budget();
        assert!(s.entails_pushed(&x().ge(Term::int(0))));
        assert_eq!(s.memo().len(), 1);
        s.pop_assumptions();
    }

    /// Differential harness: the trail engine against the seed recursive
    /// engine (kept as [`reference`]) on random formula trees. Verdicts
    /// must be identical — models too, since exploration order is pinned —
    /// and the trail engine may never spend more theory calls.
    mod differential {
        use proptest::prelude::*;

        use super::super::{reference, BoolModel, SearchOutcome, TrailSearch};
        use crate::fm::{Constraint, Saturation};
        use crate::linear::LinExpr;
        use crate::normalize::Formula;
        use crate::term::Symbol;
        use shadowdp_num::Rat;

        fn arb_atom() -> impl Strategy<Value = Formula> {
            (-3i128..=3, -3i128..=3, -3i128..=3, 0u8..3).prop_map(|(a, b, c, k)| {
                let mut lin = LinExpr::constant(Rat::int(c));
                lin.add_term(Symbol::intern("dx"), Rat::int(a));
                lin.add_term(Symbol::intern("dy"), Rat::int(b));
                Formula::Atom(match k {
                    0 => Constraint::le0(lin),
                    1 => Constraint::lt0(lin),
                    _ => Constraint::eq0(lin),
                })
            })
        }

        fn arb_formula() -> impl Strategy<Value = Formula> {
            let leaf = prop_oneof![
                (0u8..2).prop_map(|b| Formula::Const(b == 1)),
                (0usize..2, 0u8..2)
                    .prop_map(|(i, v)| { Formula::BLit(Symbol::intern(["dp", "dq"][i]), v == 1) }),
                arb_atom(),
            ];
            leaf.prop_recursive(8, 64, 4, |inner| {
                prop_oneof![
                    proptest::collection::vec(inner.clone(), 0..4).prop_map(Formula::And),
                    proptest::collection::vec(inner, 0..4).prop_map(Formula::Or),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn trail_and_reference_engines_agree(
                fs in proptest::collection::vec(arb_formula(), 0..4)
            ) {
                let (want, ref_calls) = reference::solve_formulas(fs.clone());

                let mut bools = BoolModel::new();
                let mut constraints = Vec::new();
                let mut sat = Saturation::new();
                let mut search = TrailSearch::new(
                    fs.iter().collect(),
                    &mut bools,
                    &mut constraints,
                    &mut sat,
                    None,
                    None,
                );
                let outcome = search.run();
                let trail_calls = search.theory_calls;

                match (&outcome, &want) {
                    (SearchOutcome::Sat(reals, bs), Some((ref_reals, ref_bools))) => {
                        prop_assert_eq!(reals, ref_reals, "models diverge on {:?}", fs);
                        prop_assert_eq!(bs, ref_bools, "bool models diverge on {:?}", fs);
                    }
                    (SearchOutcome::Unsat, None) => {}
                    (got, want) => {
                        prop_assert!(false, "verdicts diverge on {:?}: trail {:?} vs reference {:?}",
                            fs, got, want);
                    }
                }
                prop_assert!(
                    trail_calls <= ref_calls,
                    "trail engine did more theory work on {:?}: {} vs {}",
                    fs, trail_calls, ref_calls
                );
            }
        }
    }
}
