//! Linear normal form for numeric terms: `c + Σ aᵢ·xᵢ`.
//!
//! Variables are interned [`Symbol`]s, so map operations hash and compare
//! `u32` ids instead of strings.

use std::collections::BTreeMap;
use std::fmt;

use shadowdp_num::Rat;

use crate::term::Symbol;

/// A linear expression over real-sorted variables.
///
/// # Examples
///
/// ```
/// use shadowdp_num::Rat;
/// use shadowdp_solver::LinExpr;
///
/// let e = LinExpr::var("x") + LinExpr::var("x") + LinExpr::constant(Rat::int(3));
/// assert_eq!(e.coeff("x"), Rat::int(2));
/// assert_eq!(e.constant_part(), Rat::int(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    constant: Rat,
    /// Invariant: no zero coefficients are stored.
    coeffs: BTreeMap<Symbol, Rat>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rat) -> LinExpr {
        LinExpr {
            constant: c,
            coeffs: BTreeMap::new(),
        }
    }

    /// A single variable with coefficient 1.
    pub fn var(name: impl Into<Symbol>) -> LinExpr {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(name.into(), Rat::ONE);
        LinExpr {
            constant: Rat::ZERO,
            coeffs,
        }
    }

    /// The constant part `c`.
    pub fn constant_part(&self) -> Rat {
        self.constant
    }

    /// The coefficient of `name` (zero if absent).
    pub fn coeff(&self, name: impl Into<Symbol>) -> Rat {
        self.coeffs.get(&name.into()).copied().unwrap_or(Rat::ZERO)
    }

    /// Iterates over `(variable, coefficient)` pairs with nonzero
    /// coefficients, in symbol order.
    pub fn terms(&self) -> impl Iterator<Item = (Symbol, Rat)> + '_ {
        self.coeffs.iter().map(|(k, v)| (*k, *v))
    }

    /// Whether the expression is a constant (mentions no variables).
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.coeffs.keys().copied()
    }

    /// Scales by a rational.
    pub fn scale(mut self, k: Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        self.constant *= k;
        for v in self.coeffs.values_mut() {
            *v *= k;
        }
        self
    }

    /// Adds `k * name` in place.
    pub fn add_term(&mut self, name: Symbol, k: Rat) {
        if k.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(name).or_insert(Rat::ZERO);
        *entry += k;
        if entry.is_zero() {
            self.coeffs.remove(&name);
        }
    }

    /// Adds a constant in place.
    pub fn add_constant(&mut self, k: Rat) {
        self.constant += k;
    }

    /// Substitutes `replacement` for `name`, i.e. `self[name := replacement]`.
    pub fn subst(&self, name: Symbol, replacement: &LinExpr) -> LinExpr {
        let k = self.coeff(name);
        if k.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(&name);
        out + replacement.clone().scale(k)
    }

    /// Evaluates under a variable assignment.
    ///
    /// Missing variables default to zero (the solver always produces total
    /// models over mentioned variables, so this default only matters in
    /// tests).
    pub fn eval(&self, assignment: &BTreeMap<Symbol, Rat>) -> Rat {
        let mut acc = self.constant;
        for (v, k) in &self.coeffs {
            acc += *k * assignment.get(v).copied().unwrap_or(Rat::ZERO);
        }
        acc
    }
}

impl std::ops::Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.constant += rhs.constant;
        for (v, k) in rhs.coeffs {
            let entry = self.coeffs.entry(v).or_insert(Rat::ZERO);
            *entry += k;
            if entry.is_zero() {
                self.coeffs.remove(&v);
            }
        }
        self
    }
}

impl std::ops::Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + rhs.scale(-Rat::ONE)
    }
}

impl std::ops::Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        self.scale(-Rat::ONE)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if !self.constant.is_zero() || self.coeffs.is_empty() {
            write!(f, "{}", self.constant)?;
            first = false;
        }
        for (v, k) in &self.coeffs {
            if first {
                if *k == Rat::ONE {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{k}*{v}")?;
                }
                first = false;
            } else if k.is_negative() {
                if *k == Rat::int(-1) {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {}*{v}", -*k)?;
                }
            } else if *k == Rat::ONE {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {k}*{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_coeffs() {
        let e = LinExpr::var("x").scale(Rat::int(2)) + LinExpr::var("y")
            - LinExpr::constant(Rat::int(5));
        assert_eq!(e.coeff("x"), Rat::int(2));
        assert_eq!(e.coeff("y"), Rat::ONE);
        assert_eq!(e.coeff("z"), Rat::ZERO);
        assert_eq!(e.constant_part(), Rat::int(-5));
    }

    #[test]
    fn cancellation_removes_entries() {
        let e = LinExpr::var("x") - LinExpr::var("x");
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::zero());
    }

    #[test]
    fn subst() {
        // (2x + y + 1)[x := y - 3]  ==  3y - 5
        let e =
            LinExpr::var("x").scale(Rat::int(2)) + LinExpr::var("y") + LinExpr::constant(Rat::ONE);
        let r = LinExpr::var("y") - LinExpr::constant(Rat::int(3));
        let s = e.subst(Symbol::intern("x"), &r);
        assert_eq!(s.coeff("y"), Rat::int(3));
        assert_eq!(s.coeff("x"), Rat::ZERO);
        assert_eq!(s.constant_part(), Rat::int(-5));
    }

    #[test]
    fn eval() {
        let e = LinExpr::var("x").scale(Rat::int(3)) + LinExpr::constant(Rat::int(1));
        let mut m = BTreeMap::new();
        m.insert(Symbol::intern("x"), Rat::int(4));
        assert_eq!(e.eval(&m), Rat::int(13));
    }

    #[test]
    fn display() {
        let e = LinExpr::var("x").scale(Rat::int(-1)) + LinExpr::constant(Rat::int(2));
        assert_eq!(e.to_string(), "2 - x");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
