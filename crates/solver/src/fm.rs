//! Fourier–Motzkin elimination over conjunctions of linear constraints,
//! with model reconstruction.
//!
//! This is the theory core of the solver: given a conjunction of constraints
//! `lin ⊙ 0` (with `⊙ ∈ {≤, <, =}`), decide satisfiability over the
//! rationals and, if satisfiable, produce a satisfying assignment. All
//! variables are interned [`Symbol`]s.

use std::collections::BTreeMap;

use shadowdp_num::Rat;

use crate::linear::LinExpr;
use crate::term::Symbol;

/// Relation of a constraint against zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `lin <= 0`
    Le,
    /// `lin < 0`
    Lt,
    /// `lin == 0`
    Eq,
}

/// A linear constraint `lin ⊙ 0`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left-hand side.
    pub lin: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

impl Constraint {
    /// `lin <= 0`
    pub fn le0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Le }
    }

    /// `lin < 0`
    pub fn lt0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Lt }
    }

    /// `lin == 0`
    pub fn eq0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Eq }
    }

    /// Whether the constraint holds under `assignment`.
    pub fn eval(&self, assignment: &BTreeMap<Symbol, Rat>) -> bool {
        let v = self.lin.eval(assignment);
        match self.rel {
            Rel::Le => v <= Rat::ZERO,
            Rel::Lt => v < Rat::ZERO,
            Rel::Eq => v.is_zero(),
        }
    }

    /// If the constraint mentions no variables, evaluates it.
    fn as_ground(&self) -> Option<bool> {
        if !self.lin.is_constant() {
            return None;
        }
        let c = self.lin.constant_part();
        Some(match self.rel {
            Rel::Le => c <= Rat::ZERO,
            Rel::Lt => c < Rat::ZERO,
            Rel::Eq => c.is_zero(),
        })
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rel = match self.rel {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Eq => "==",
        };
        write!(f, "{} {} 0", self.lin, rel)
    }
}

/// Result of a Fourier–Motzkin satisfiability check.
#[derive(Clone, Debug, PartialEq)]
pub enum FmResult {
    /// Satisfiable, with a witness assignment for every mentioned variable.
    Sat(BTreeMap<Symbol, Rat>),
    /// Unsatisfiable.
    Unsat,
}

impl FmResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, FmResult::Sat(_))
    }
}

/// Decides satisfiability of a conjunction of linear constraints over the
/// rationals; returns a model when satisfiable.
///
/// The procedure first uses equalities as substitutions (Gaussian
/// elimination), then eliminates the remaining variables one at a time,
/// combining every lower bound with every upper bound. Model reconstruction
/// walks the eliminations backwards, picking a value inside the final
/// bounds at each step.
///
/// # Examples
///
/// ```
/// use shadowdp_num::Rat;
/// use shadowdp_solver::{Constraint, LinExpr, Symbol};
/// use shadowdp_solver::fm::{check_sat, FmResult};
///
/// // x <= 3  ∧  -x < -1   (i.e. x > 1): satisfiable
/// let c1 = Constraint::le0(LinExpr::var("x") - LinExpr::constant(Rat::int(3)));
/// let c2 = Constraint::lt0(LinExpr::constant(Rat::ONE) - LinExpr::var("x"));
/// match check_sat(&[c1, c2]) {
///     FmResult::Sat(m) => {
///         let x = m[&Symbol::intern("x")];
///         assert!(x > Rat::ONE && x <= Rat::int(3));
///     }
///     FmResult::Unsat => panic!("should be satisfiable"),
/// }
/// ```
pub fn check_sat(constraints: &[Constraint]) -> FmResult {
    // Steps of the elimination, replayed backwards for model construction.
    enum Step {
        /// Variable defined by an equality: `var := expr` (expr over
        /// still-unresolved variables).
        Defined { var: Symbol, expr: LinExpr },
        /// Variable eliminated by FM; the bounds refer to the constraint
        /// system at that point.
        Eliminated {
            var: Symbol,
            lowers: Vec<(LinExpr, bool)>, // (bound_expr, strict): var >(=) bound
            uppers: Vec<(LinExpr, bool)>, // (bound_expr, strict): var <(=) bound
        },
    }

    let mut work: Vec<Constraint> = Vec::new();
    for c in constraints {
        match c.as_ground() {
            Some(true) => {}
            Some(false) => return FmResult::Unsat,
            None => work.push(c.clone()),
        }
    }
    dedupe(&mut work);

    let mut steps: Vec<Step> = Vec::new();

    // Phase 1: Gaussian elimination on equalities.
    while let Some(pos) = work.iter().position(|c| c.rel == Rel::Eq) {
        let eq = work.swap_remove(pos);
        // Pick the variable with the "simplest" coefficient to solve for.
        let Some((var, k)) = eq.lin.terms().next() else {
            // Ground equality.
            if eq.lin.constant_part().is_zero() {
                continue;
            }
            return FmResult::Unsat;
        };
        // var == -(lin - k*var)/k
        let mut rest = eq.lin.clone();
        rest.add_term(var, -k);
        let def = rest.scale(-Rat::ONE / k);
        for c in &mut work {
            c.lin = c.lin.subst(var, &def);
        }
        // Re-check ground constraints created by the substitution.
        let mut next = Vec::with_capacity(work.len());
        for c in work {
            match c.as_ground() {
                Some(true) => {}
                Some(false) => return FmResult::Unsat,
                None => next.push(c),
            }
        }
        work = next;
        dedupe(&mut work);
        steps.push(Step::Defined { var, expr: def });
    }

    // Phase 2: Fourier–Motzkin on the inequalities.
    loop {
        // Pick the variable occurring in the fewest constraints (greedy
        // heuristic to limit blowup).
        let mut counts: BTreeMap<Symbol, usize> = BTreeMap::new();
        for c in &work {
            for v in c.lin.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let Some((var, _)) = counts.into_iter().min_by_key(|(_, n)| *n) else {
            break; // no variables left
        };

        let mut lowers: Vec<(LinExpr, bool)> = Vec::new();
        let mut uppers: Vec<(LinExpr, bool)> = Vec::new();
        let mut rest: Vec<Constraint> = Vec::new();
        for c in work {
            let k = c.lin.coeff(var);
            if k.is_zero() {
                rest.push(c);
                continue;
            }
            // k*var + r ⊙ 0  with ⊙ ∈ {<=, <}
            let mut r = c.lin.clone();
            r.add_term(var, -k);
            let strict = c.rel == Rel::Lt;
            let bound = r.scale(-Rat::ONE / k);
            if k.is_positive() {
                // var <=(<) bound
                uppers.push((bound, strict));
            } else {
                // var >=(>) bound
                lowers.push((bound, strict));
            }
        }
        // Combine lower and upper bounds: lower ⊙ upper.
        for (lo, lo_strict) in &lowers {
            for (hi, hi_strict) in &uppers {
                let lin = lo.clone() - hi.clone();
                let strict = *lo_strict || *hi_strict;
                let c = if strict {
                    Constraint::lt0(lin)
                } else {
                    Constraint::le0(lin)
                };
                match c.as_ground() {
                    Some(true) => {}
                    Some(false) => return FmResult::Unsat,
                    None => rest.push(c),
                }
            }
        }
        dedupe(&mut rest);
        work = rest;
        steps.push(Step::Eliminated {
            var,
            lowers,
            uppers,
        });
    }

    // All remaining constraints are ground and were checked; reconstruct a
    // model by replaying the steps backwards.
    let mut model: BTreeMap<Symbol, Rat> = BTreeMap::new();
    for step in steps.iter().rev() {
        match step {
            Step::Eliminated {
                var,
                lowers,
                uppers,
            } => {
                let lo = tighten(lowers, &model, true);
                let hi = tighten(uppers, &model, false);
                let value = choose_value(lo, hi);
                model.insert(*var, value);
            }
            Step::Defined { var, expr } => {
                let value = expr.eval(&model);
                model.insert(*var, value);
            }
        }
    }
    FmResult::Sat(model)
}

/// Evaluates a set of bounds under `model` and returns the tightest one:
/// for lower bounds (`is_lower = true`) the maximum, preferring strict at
/// ties; for upper bounds the minimum, preferring strict at ties.
fn tighten(
    bounds: &[(LinExpr, bool)],
    model: &BTreeMap<Symbol, Rat>,
    is_lower: bool,
) -> Option<(Rat, bool)> {
    let mut best: Option<(Rat, bool)> = None;
    for (e, strict) in bounds {
        let v = e.eval(model);
        best = Some(match best {
            None => (v, *strict),
            Some((bv, bs)) => {
                if v == bv {
                    (bv, bs || *strict)
                } else if (is_lower && v > bv) || (!is_lower && v < bv) {
                    (v, *strict)
                } else {
                    (bv, bs)
                }
            }
        });
    }
    best
}

/// Picks a rational strictly/weakly between the given bounds. The bounds are
/// guaranteed compatible because elimination already checked all
/// combinations.
fn choose_value(lo: Option<(Rat, bool)>, hi: Option<(Rat, bool)>) -> Rat {
    match (lo, hi) {
        (None, None) => Rat::ZERO,
        (Some((l, strict)), None) => {
            if strict {
                l + Rat::ONE
            } else {
                l
            }
        }
        (None, Some((h, strict))) => {
            if strict {
                h - Rat::ONE
            } else {
                h
            }
        }
        (Some((l, ls)), Some((h, hs))) => {
            if !ls && l == h {
                // l <= x <= h with l == h forces x = l (h side must be weak
                // too, otherwise elimination would have failed).
                debug_assert!(!hs);
                l
            } else if !ls {
                if !hs {
                    // midpoint works for weak bounds too
                    (l + h) / Rat::TWO
                } else {
                    l // l satisfies l <= x < h since l < h here
                }
            } else if !hs {
                h
            } else {
                (l + h) / Rat::TWO
            }
        }
    }
}

/// Removes duplicate constraints (syntactic, after normal forms).
fn dedupe(cs: &mut Vec<Constraint>) {
    let mut seen = std::collections::HashSet::new();
    cs.retain(|c| seen.insert(c.clone()));
}

/// Incremental Fourier–Motzkin saturation with undo.
///
/// [`check_sat`] rebuilds its whole elimination from scratch on every call;
/// a `Saturation` instead keeps the elimination steps *live* between pushes.
/// Each step records one eliminated variable and the lower/upper bounds
/// collected for it; [`Saturation::push`] cascades a new constraint through
/// the existing steps — converting it into a bound at the first step whose
/// variable it mentions, combining it with every stored opposite bound, and
/// recursing on the combinations — so the incremental closure equals the
/// batch FM closure over the same constraints under the same (dynamically
/// grown) elimination order. Over the rationals FM is order-insensitive for
/// satisfiability, so a push reports inconsistency exactly when a fresh
/// [`check_sat`] over the whole set would.
///
/// Every push returns a [`SatUndo`] that [`Saturation::pop`] applies to
/// restore the pre-push state exactly. Undo tokens must be popped in
/// reverse push order (stack discipline) — the solver's trail guarantees
/// this.
///
/// Equalities are split into two weak inequalities (`lin == 0` becomes
/// `lin <= 0 ∧ -lin <= 0`), which is exact over ℚ; the Gaussian
/// substitution phase of [`check_sat`] exists only to speed up model
/// reconstruction, which a saturation never performs (the solver runs one
/// final [`check_sat`] to extract a model once the boolean search
/// succeeds).
#[derive(Debug, Default)]
pub struct Saturation {
    steps: Vec<SatStep>,
    unsat: bool,
}

/// One live elimination step: the variable and its collected bounds.
/// Stored bound expressions mention only variables whose step comes later
/// (or that have no step yet) — the invariant that makes cascading from
/// `step + 1` complete.
#[derive(Debug)]
struct SatStep {
    var: Symbol,
    lowers: Vec<(LinExpr, bool)>, // (bound, strict): var >(=) bound
    uppers: Vec<(LinExpr, bool)>, // (bound, strict): var <(=) bound
}

/// Undo token for one [`Saturation::push`].
#[derive(Debug)]
pub struct SatUndo {
    /// Step count before the push; later steps are dropped wholesale.
    steps_mark: usize,
    /// Bounds appended to pre-existing steps: `(step index, is_lower)`,
    /// popped in reverse.
    added: Vec<(usize, bool)>,
    /// Whether this push flipped the saturation to inconsistent.
    tripped: bool,
}

impl Saturation {
    /// An empty (trivially consistent) saturation.
    pub fn new() -> Saturation {
        Saturation::default()
    }

    /// Whether no constraints have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && !self.unsat
    }

    /// Whether the absorbed conjunction is still satisfiable.
    pub fn is_consistent(&self) -> bool {
        !self.unsat
    }

    /// Absorbs one constraint; returns whether the conjunction is still
    /// satisfiable, plus the token that undoes this push. Pushing onto an
    /// already-inconsistent saturation is a no-op that reports `false`.
    pub fn push(&mut self, c: &Constraint) -> (bool, SatUndo) {
        let mut undo = SatUndo {
            steps_mark: self.steps.len(),
            added: Vec::new(),
            tripped: false,
        };
        if self.unsat {
            return (false, undo);
        }
        // Worklist of inequalities `lin ⊙ 0` still to cascade, each tagged
        // with the first step index it may interact with.
        let mut queue: Vec<(LinExpr, bool, usize)> = Vec::new();
        match c.rel {
            Rel::Le => queue.push((c.lin.clone(), false, 0)),
            Rel::Lt => queue.push((c.lin.clone(), true, 0)),
            Rel::Eq => {
                queue.push((c.lin.clone(), false, 0));
                queue.push((-c.lin.clone(), false, 0));
            }
        }
        while let Some((lin, strict, from)) = queue.pop() {
            if !self.absorb(lin, strict, from, &mut undo, &mut queue) {
                self.unsat = true;
                undo.tripped = true;
                return (false, undo);
            }
        }
        (true, undo)
    }

    /// Rolls back one push. Tokens must be popped in reverse push order.
    pub fn pop(&mut self, undo: SatUndo) {
        if undo.tripped {
            self.unsat = false;
        }
        for &(i, is_lower) in undo.added.iter().rev() {
            let step = &mut self.steps[i];
            if is_lower {
                step.lowers.pop();
            } else {
                step.uppers.pop();
            }
        }
        self.steps.truncate(undo.steps_mark);
    }

    /// Cascades one inequality `lin ⊙ 0` (strict iff `strict`) through the
    /// steps starting at `from`: ground inequalities evaluate (a violation
    /// is the unsat signal), others become a bound at the first relevant
    /// step — queuing one FM combination per stored opposite bound — or
    /// open a new step when no existing one mentions their variables.
    fn absorb(
        &mut self,
        lin: LinExpr,
        strict: bool,
        from: usize,
        undo: &mut SatUndo,
        queue: &mut Vec<(LinExpr, bool, usize)>,
    ) -> bool {
        if lin.is_constant() {
            let c = lin.constant_part();
            return if strict {
                c < Rat::ZERO
            } else {
                c <= Rat::ZERO
            };
        }
        let mut hit = None;
        for i in from..self.steps.len() {
            if !lin.coeff(self.steps[i].var).is_zero() {
                hit = Some(i);
                break;
            }
        }
        let Some(i) = hit else {
            // No step mentions any of its variables: open a new step for
            // its first variable (empty opposite side, so no combinations).
            // The new step's index is past `steps_mark`, so undo handles it
            // by truncation alone.
            let (var, k) = lin.terms().next().expect("non-ground expression");
            let mut r = lin.clone();
            r.add_term(var, -k);
            let bound = r.scale(-Rat::ONE / k);
            let (lowers, uppers) = if k.is_positive() {
                (Vec::new(), vec![(bound, strict)])
            } else {
                (vec![(bound, strict)], Vec::new())
            };
            self.steps.push(SatStep {
                var,
                lowers,
                uppers,
            });
            return true;
        };
        let var = self.steps[i].var;
        let k = lin.coeff(var);
        let mut r = lin;
        r.add_term(var, -k);
        let bound = r.scale(-Rat::ONE / k);
        let is_lower = !k.is_positive(); // k < 0: var >= bound
        let step = &self.steps[i];
        let side = if is_lower { &step.lowers } else { &step.uppers };
        if side.iter().any(|(b, s)| *s == strict && *b == bound) {
            // Exact duplicate of a live bound: it adds nothing and its
            // combinations already exist. Skipping keeps repeated
            // assumptions (Houdini re-pushes the same path atoms per
            // query) from inflating the closure quadratically.
            return true;
        }
        let opposite = if is_lower { &step.uppers } else { &step.lowers };
        for (other, other_strict) in opposite {
            // lower - upper ⊙ 0, strict if either side is.
            let (lo, hi) = if is_lower {
                (&bound, other)
            } else {
                (other, &bound)
            };
            queue.push((lo.clone() - hi.clone(), strict || *other_strict, i + 1));
        }
        let step = &mut self.steps[i];
        let side = if is_lower {
            &mut step.lowers
        } else {
            &mut step.uppers
        };
        side.push((bound, strict));
        if i < undo.steps_mark {
            undo.added.push((i, is_lower));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(lin: LinExpr) -> Constraint {
        Constraint::le0(lin)
    }

    fn x() -> LinExpr {
        LinExpr::var("x")
    }

    fn y() -> LinExpr {
        LinExpr::var("y")
    }

    fn k(n: i128) -> LinExpr {
        LinExpr::constant(Rat::int(n))
    }

    fn val(m: &BTreeMap<Symbol, Rat>, name: &str) -> Rat {
        m[&Symbol::intern(name)]
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(check_sat(&[]).is_sat());
        assert!(check_sat(&[le(k(-1))]).is_sat());
        assert_eq!(check_sat(&[le(k(1))]), FmResult::Unsat);
        assert_eq!(check_sat(&[Constraint::lt0(k(0))]), FmResult::Unsat);
        assert!(check_sat(&[Constraint::eq0(k(0))]).is_sat());
        assert_eq!(check_sat(&[Constraint::eq0(k(2))]), FmResult::Unsat);
    }

    #[test]
    fn bounded_interval() {
        // 1 <= x <= 3
        let cs = [le(k(1) - x()), le(x() - k(3))];
        match check_sat(&cs) {
            FmResult::Sat(m) => {
                assert!(cs.iter().all(|c| c.eval(&m)), "model violates input: {m:?}");
            }
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn empty_interval_is_unsat() {
        // x <= 1 ∧ x >= 2
        let cs = [le(x() - k(1)), le(k(2) - x())];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn strictness_matters() {
        // x <= 1 ∧ x >= 1 is sat (x = 1) but x < 1 ∧ x >= 1 is unsat
        assert!(check_sat(&[le(x() - k(1)), le(k(1) - x())]).is_sat());
        assert_eq!(
            check_sat(&[Constraint::lt0(x() - k(1)), le(k(1) - x())]),
            FmResult::Unsat
        );
    }

    #[test]
    fn equalities_substitute() {
        // x == y + 1 ∧ y == 2  =>  x == 3; check with x <= 3 ∧ x >= 3
        let cs = [
            Constraint::eq0(x() - y() - k(1)),
            Constraint::eq0(y() - k(2)),
            le(x() - k(3)),
            le(k(3) - x()),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => {
                assert_eq!(val(&m, "x"), Rat::int(3));
                assert_eq!(val(&m, "y"), Rat::int(2));
            }
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn inconsistent_equalities() {
        let cs = [Constraint::eq0(x() - k(1)), Constraint::eq0(x() - k(2))];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn two_variable_system() {
        // x + y <= 1 ∧ x - y <= 1 ∧ -x < 0 (x > 0)
        let cs = [
            le(x() + y() - k(1)),
            le(x() - y() - k(1)),
            Constraint::lt0(-x()),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => assert!(cs.iter().all(|c| c.eval(&m))),
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn chained_transitivity_unsat() {
        // x <= y ∧ y <= z ∧ z < x is unsat
        let z = LinExpr::var("z");
        let cs = [le(x() - y()), le(y() - z.clone()), Constraint::lt0(z - x())];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn model_satisfies_equalities_mixed_with_inequalities() {
        // x == 2y ∧ y >= 3 ∧ x <= 10
        let cs = [
            Constraint::eq0(x() - y().scale(Rat::int(2))),
            le(k(3) - y()),
            le(x() - k(10)),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => assert!(cs.iter().all(|c| c.eval(&m)), "{m:?}"),
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn saturation_tracks_batch_fm_verdicts_incrementally() {
        // Pushing one constraint at a time must agree with batch FM over
        // every prefix — the completeness invariant the trail core rests on.
        let cs = [
            le(k(1) - x()),                    // x >= 1
            le(x() - k(8)),                    // x <= 8
            le(k(2) - y()),                    // y >= 2
            le(x() + y() - k(20)),             // x + y <= 20
            Constraint::lt0(k(9) - x() - y()), // x + y > 9
        ];
        let mut sat = Saturation::new();
        let mut undos = Vec::new();
        for i in 0..cs.len() {
            let (ok, u) = sat.push(&cs[i]);
            undos.push(u);
            let batch = check_sat(&cs[..=i]).is_sat();
            assert_eq!(ok, batch, "prefix {i}");
            assert_eq!(sat.is_consistent(), batch, "prefix {i}");
        }
        // Unwind completely: back to the pristine empty saturation.
        for u in undos.into_iter().rev() {
            sat.pop(u);
        }
        assert!(sat.is_empty());
        assert!(sat.is_consistent());
    }

    #[test]
    fn saturation_pop_recovers_from_inconsistency() {
        let mut sat = Saturation::new();
        let (ok, _base) = sat.push(&le(k(1) - x())); // x >= 1
        assert!(ok);
        let (ok, bad) = sat.push(&le(x() + k(5))); // x <= -5: contradiction
        assert!(!ok);
        assert!(!sat.is_consistent());
        // Rolling back the offending push restores the consistent base…
        sat.pop(bad);
        assert!(sat.is_consistent());
        // …which still constrains: x <= 0 contradicts it again.
        let (ok, _u) = sat.push(&le(x()));
        assert!(!ok);
    }

    #[test]
    fn saturation_dedups_repeated_pushes() {
        // The Houdini base re-pushes identical path atoms across frames;
        // repeats are consumed without growing the bound lists, and the
        // stack discipline keeps the undo of the duplicate a no-op.
        let mut sat = Saturation::new();
        let c = le(k(1) - x());
        let (_, first) = sat.push(&c);
        let (ok, dup) = sat.push(&c);
        assert!(ok);
        sat.pop(dup);
        // The original bound survived the duplicate's pop.
        let (ok, _u) = sat.push(&le(x())); // x <= 0 vs x >= 1
        assert!(!ok, "bound lost when the duplicate was popped");
        sat.pop(_u);
        sat.pop(first);
        assert!(sat.is_empty());
    }

    #[test]
    fn saturation_splits_equalities() {
        // x == 2 pushed incrementally behaves as both x <= 2 and x >= 2.
        let mut sat = Saturation::new();
        let (ok, _u) = sat.push(&Constraint::eq0(x() - k(2)));
        assert!(ok);
        let (ok, u) = sat.push(&le(k(3) - x())); // x >= 3
        assert!(!ok);
        sat.pop(u);
        let (ok, u) = sat.push(&le(x() - k(1))); // x <= 1
        assert!(!ok);
        sat.pop(u);
        let (ok, _u) = sat.push(&le(k(2) - x())); // x >= 2: tight but fine
        assert!(ok);
    }
}
