//! Fourier–Motzkin elimination over conjunctions of linear constraints,
//! with model reconstruction.
//!
//! This is the theory core of the solver: given a conjunction of constraints
//! `lin ⊙ 0` (with `⊙ ∈ {≤, <, =}`), decide satisfiability over the
//! rationals and, if satisfiable, produce a satisfying assignment. All
//! variables are interned [`Symbol`]s.

use std::collections::BTreeMap;

use shadowdp_num::Rat;

use crate::linear::LinExpr;
use crate::term::Symbol;

/// Relation of a constraint against zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `lin <= 0`
    Le,
    /// `lin < 0`
    Lt,
    /// `lin == 0`
    Eq,
}

/// A linear constraint `lin ⊙ 0`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Left-hand side.
    pub lin: LinExpr,
    /// Relation against zero.
    pub rel: Rel,
}

impl Constraint {
    /// `lin <= 0`
    pub fn le0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Le }
    }

    /// `lin < 0`
    pub fn lt0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Lt }
    }

    /// `lin == 0`
    pub fn eq0(lin: LinExpr) -> Constraint {
        Constraint { lin, rel: Rel::Eq }
    }

    /// Whether the constraint holds under `assignment`.
    pub fn eval(&self, assignment: &BTreeMap<Symbol, Rat>) -> bool {
        let v = self.lin.eval(assignment);
        match self.rel {
            Rel::Le => v <= Rat::ZERO,
            Rel::Lt => v < Rat::ZERO,
            Rel::Eq => v.is_zero(),
        }
    }

    /// If the constraint mentions no variables, evaluates it.
    fn as_ground(&self) -> Option<bool> {
        if !self.lin.is_constant() {
            return None;
        }
        let c = self.lin.constant_part();
        Some(match self.rel {
            Rel::Le => c <= Rat::ZERO,
            Rel::Lt => c < Rat::ZERO,
            Rel::Eq => c.is_zero(),
        })
    }
}

impl std::fmt::Display for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rel = match self.rel {
            Rel::Le => "<=",
            Rel::Lt => "<",
            Rel::Eq => "==",
        };
        write!(f, "{} {} 0", self.lin, rel)
    }
}

/// Result of a Fourier–Motzkin satisfiability check.
#[derive(Clone, Debug, PartialEq)]
pub enum FmResult {
    /// Satisfiable, with a witness assignment for every mentioned variable.
    Sat(BTreeMap<Symbol, Rat>),
    /// Unsatisfiable.
    Unsat,
}

impl FmResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, FmResult::Sat(_))
    }
}

/// Decides satisfiability of a conjunction of linear constraints over the
/// rationals; returns a model when satisfiable.
///
/// The procedure first uses equalities as substitutions (Gaussian
/// elimination), then eliminates the remaining variables one at a time,
/// combining every lower bound with every upper bound. Model reconstruction
/// walks the eliminations backwards, picking a value inside the final
/// bounds at each step.
///
/// # Examples
///
/// ```
/// use shadowdp_num::Rat;
/// use shadowdp_solver::{Constraint, LinExpr, Symbol};
/// use shadowdp_solver::fm::{check_sat, FmResult};
///
/// // x <= 3  ∧  -x < -1   (i.e. x > 1): satisfiable
/// let c1 = Constraint::le0(LinExpr::var("x") - LinExpr::constant(Rat::int(3)));
/// let c2 = Constraint::lt0(LinExpr::constant(Rat::ONE) - LinExpr::var("x"));
/// match check_sat(&[c1, c2]) {
///     FmResult::Sat(m) => {
///         let x = m[&Symbol::intern("x")];
///         assert!(x > Rat::ONE && x <= Rat::int(3));
///     }
///     FmResult::Unsat => panic!("should be satisfiable"),
/// }
/// ```
pub fn check_sat(constraints: &[Constraint]) -> FmResult {
    // Steps of the elimination, replayed backwards for model construction.
    enum Step {
        /// Variable defined by an equality: `var := expr` (expr over
        /// still-unresolved variables).
        Defined { var: Symbol, expr: LinExpr },
        /// Variable eliminated by FM; the bounds refer to the constraint
        /// system at that point.
        Eliminated {
            var: Symbol,
            lowers: Vec<(LinExpr, bool)>, // (bound_expr, strict): var >(=) bound
            uppers: Vec<(LinExpr, bool)>, // (bound_expr, strict): var <(=) bound
        },
    }

    let mut work: Vec<Constraint> = Vec::new();
    for c in constraints {
        match c.as_ground() {
            Some(true) => {}
            Some(false) => return FmResult::Unsat,
            None => work.push(c.clone()),
        }
    }
    dedupe(&mut work);

    let mut steps: Vec<Step> = Vec::new();

    // Phase 1: Gaussian elimination on equalities.
    while let Some(pos) = work.iter().position(|c| c.rel == Rel::Eq) {
        let eq = work.swap_remove(pos);
        // Pick the variable with the "simplest" coefficient to solve for.
        let Some((var, k)) = eq.lin.terms().next() else {
            // Ground equality.
            if eq.lin.constant_part().is_zero() {
                continue;
            }
            return FmResult::Unsat;
        };
        // var == -(lin - k*var)/k
        let mut rest = eq.lin.clone();
        rest.add_term(var, -k);
        let def = rest.scale(-Rat::ONE / k);
        for c in &mut work {
            c.lin = c.lin.subst(var, &def);
        }
        // Re-check ground constraints created by the substitution.
        let mut next = Vec::with_capacity(work.len());
        for c in work {
            match c.as_ground() {
                Some(true) => {}
                Some(false) => return FmResult::Unsat,
                None => next.push(c),
            }
        }
        work = next;
        dedupe(&mut work);
        steps.push(Step::Defined { var, expr: def });
    }

    // Phase 2: Fourier–Motzkin on the inequalities.
    loop {
        // Pick the variable occurring in the fewest constraints (greedy
        // heuristic to limit blowup).
        let mut counts: BTreeMap<Symbol, usize> = BTreeMap::new();
        for c in &work {
            for v in c.lin.vars() {
                *counts.entry(v).or_insert(0) += 1;
            }
        }
        let Some((var, _)) = counts.into_iter().min_by_key(|(_, n)| *n) else {
            break; // no variables left
        };

        let mut lowers: Vec<(LinExpr, bool)> = Vec::new();
        let mut uppers: Vec<(LinExpr, bool)> = Vec::new();
        let mut rest: Vec<Constraint> = Vec::new();
        for c in work {
            let k = c.lin.coeff(var);
            if k.is_zero() {
                rest.push(c);
                continue;
            }
            // k*var + r ⊙ 0  with ⊙ ∈ {<=, <}
            let mut r = c.lin.clone();
            r.add_term(var, -k);
            let strict = c.rel == Rel::Lt;
            let bound = r.scale(-Rat::ONE / k);
            if k.is_positive() {
                // var <=(<) bound
                uppers.push((bound, strict));
            } else {
                // var >=(>) bound
                lowers.push((bound, strict));
            }
        }
        // Combine lower and upper bounds: lower ⊙ upper.
        for (lo, lo_strict) in &lowers {
            for (hi, hi_strict) in &uppers {
                let lin = lo.clone() - hi.clone();
                let strict = *lo_strict || *hi_strict;
                let c = if strict {
                    Constraint::lt0(lin)
                } else {
                    Constraint::le0(lin)
                };
                match c.as_ground() {
                    Some(true) => {}
                    Some(false) => return FmResult::Unsat,
                    None => rest.push(c),
                }
            }
        }
        dedupe(&mut rest);
        work = rest;
        steps.push(Step::Eliminated {
            var,
            lowers,
            uppers,
        });
    }

    // All remaining constraints are ground and were checked; reconstruct a
    // model by replaying the steps backwards.
    let mut model: BTreeMap<Symbol, Rat> = BTreeMap::new();
    for step in steps.iter().rev() {
        match step {
            Step::Eliminated {
                var,
                lowers,
                uppers,
            } => {
                let lo = tighten(lowers, &model, true);
                let hi = tighten(uppers, &model, false);
                let value = choose_value(lo, hi);
                model.insert(*var, value);
            }
            Step::Defined { var, expr } => {
                let value = expr.eval(&model);
                model.insert(*var, value);
            }
        }
    }
    FmResult::Sat(model)
}

/// Evaluates a set of bounds under `model` and returns the tightest one:
/// for lower bounds (`is_lower = true`) the maximum, preferring strict at
/// ties; for upper bounds the minimum, preferring strict at ties.
fn tighten(
    bounds: &[(LinExpr, bool)],
    model: &BTreeMap<Symbol, Rat>,
    is_lower: bool,
) -> Option<(Rat, bool)> {
    let mut best: Option<(Rat, bool)> = None;
    for (e, strict) in bounds {
        let v = e.eval(model);
        best = Some(match best {
            None => (v, *strict),
            Some((bv, bs)) => {
                if v == bv {
                    (bv, bs || *strict)
                } else if (is_lower && v > bv) || (!is_lower && v < bv) {
                    (v, *strict)
                } else {
                    (bv, bs)
                }
            }
        });
    }
    best
}

/// Picks a rational strictly/weakly between the given bounds. The bounds are
/// guaranteed compatible because elimination already checked all
/// combinations.
fn choose_value(lo: Option<(Rat, bool)>, hi: Option<(Rat, bool)>) -> Rat {
    match (lo, hi) {
        (None, None) => Rat::ZERO,
        (Some((l, strict)), None) => {
            if strict {
                l + Rat::ONE
            } else {
                l
            }
        }
        (None, Some((h, strict))) => {
            if strict {
                h - Rat::ONE
            } else {
                h
            }
        }
        (Some((l, ls)), Some((h, hs))) => {
            if !ls && l == h {
                // l <= x <= h with l == h forces x = l (h side must be weak
                // too, otherwise elimination would have failed).
                debug_assert!(!hs);
                l
            } else if !ls {
                if !hs {
                    // midpoint works for weak bounds too
                    (l + h) / Rat::TWO
                } else {
                    l // l satisfies l <= x < h since l < h here
                }
            } else if !hs {
                h
            } else {
                (l + h) / Rat::TWO
            }
        }
    }
}

/// Removes duplicate constraints (syntactic, after normal forms).
fn dedupe(cs: &mut Vec<Constraint>) {
    let mut seen = std::collections::HashSet::new();
    cs.retain(|c| seen.insert(c.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(lin: LinExpr) -> Constraint {
        Constraint::le0(lin)
    }

    fn x() -> LinExpr {
        LinExpr::var("x")
    }

    fn y() -> LinExpr {
        LinExpr::var("y")
    }

    fn k(n: i128) -> LinExpr {
        LinExpr::constant(Rat::int(n))
    }

    fn val(m: &BTreeMap<Symbol, Rat>, name: &str) -> Rat {
        m[&Symbol::intern(name)]
    }

    #[test]
    fn trivial_sat_and_unsat() {
        assert!(check_sat(&[]).is_sat());
        assert!(check_sat(&[le(k(-1))]).is_sat());
        assert_eq!(check_sat(&[le(k(1))]), FmResult::Unsat);
        assert_eq!(check_sat(&[Constraint::lt0(k(0))]), FmResult::Unsat);
        assert!(check_sat(&[Constraint::eq0(k(0))]).is_sat());
        assert_eq!(check_sat(&[Constraint::eq0(k(2))]), FmResult::Unsat);
    }

    #[test]
    fn bounded_interval() {
        // 1 <= x <= 3
        let cs = [le(k(1) - x()), le(x() - k(3))];
        match check_sat(&cs) {
            FmResult::Sat(m) => {
                assert!(cs.iter().all(|c| c.eval(&m)), "model violates input: {m:?}");
            }
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn empty_interval_is_unsat() {
        // x <= 1 ∧ x >= 2
        let cs = [le(x() - k(1)), le(k(2) - x())];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn strictness_matters() {
        // x <= 1 ∧ x >= 1 is sat (x = 1) but x < 1 ∧ x >= 1 is unsat
        assert!(check_sat(&[le(x() - k(1)), le(k(1) - x())]).is_sat());
        assert_eq!(
            check_sat(&[Constraint::lt0(x() - k(1)), le(k(1) - x())]),
            FmResult::Unsat
        );
    }

    #[test]
    fn equalities_substitute() {
        // x == y + 1 ∧ y == 2  =>  x == 3; check with x <= 3 ∧ x >= 3
        let cs = [
            Constraint::eq0(x() - y() - k(1)),
            Constraint::eq0(y() - k(2)),
            le(x() - k(3)),
            le(k(3) - x()),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => {
                assert_eq!(val(&m, "x"), Rat::int(3));
                assert_eq!(val(&m, "y"), Rat::int(2));
            }
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn inconsistent_equalities() {
        let cs = [Constraint::eq0(x() - k(1)), Constraint::eq0(x() - k(2))];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn two_variable_system() {
        // x + y <= 1 ∧ x - y <= 1 ∧ -x < 0 (x > 0)
        let cs = [
            le(x() + y() - k(1)),
            le(x() - y() - k(1)),
            Constraint::lt0(-x()),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => assert!(cs.iter().all(|c| c.eval(&m))),
            FmResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn chained_transitivity_unsat() {
        // x <= y ∧ y <= z ∧ z < x is unsat
        let z = LinExpr::var("z");
        let cs = [le(x() - y()), le(y() - z.clone()), Constraint::lt0(z - x())];
        assert_eq!(check_sat(&cs), FmResult::Unsat);
    }

    #[test]
    fn model_satisfies_equalities_mixed_with_inequalities() {
        // x == 2y ∧ y >= 3 ∧ x <= 10
        let cs = [
            Constraint::eq0(x() - y().scale(Rat::int(2))),
            le(k(3) - y()),
            le(x() - k(10)),
        ];
        match check_sat(&cs) {
            FmResult::Sat(m) => assert!(cs.iter().all(|c| c.eval(&m)), "{m:?}"),
            FmResult::Unsat => panic!("should be sat"),
        }
    }
}
