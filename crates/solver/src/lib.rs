//! An SMT-lite decision procedure for quantifier-free linear rational
//! arithmetic (QF-LRA) with boolean structure, built on **hash-consed
//! terms** and **memoized queries**.
//!
//! This crate stands in for the Z3 / MathSAT / SMTInterpol backends the
//! ShadowDP paper uses: the type system's side conditions ((T-ODot) branch
//! consistency, (T-Laplace) injectivity) and the verifier's verification
//! conditions are all QF-LRA after the paper's own linearization rewrites.
//!
//! # Architecture
//!
//! - [`term`] — the two-sorted term language (reals and booleans) with
//!   `ite`, `abs`, and the usual connectives. Terms are **hash-consed**: a
//!   [`TermArena`] dedups structurally equal nodes, a term is a `Copy`-able
//!   [`TermId`] (`u32`), and structural equality / hashing are O(1) id
//!   operations. Every node also carries a 128-bit structural
//!   [`Fingerprint`] computed at intern time. Variable names are interned
//!   [`Symbol`]s. Almost all code uses the chainable [`TermId`] methods
//!   against **this thread's arena shard** (no process-wide lock — one
//!   arena per thread); explicit arenas exist for isolation (property
//!   tests, fuzzing).
//! - [`linear`] — linear normal form `c + Σ aᵢ·xᵢ` over `Symbol` keys;
//! - [`normalize`] — desugaring (`abs`/`ite` lifting, implication
//!   elimination), NNF, and *sound abstraction* of non-linear atoms by
//!   fresh boolean symbols (the abstraction cache keys on `(TermId, Rel)` —
//!   an integer pair, not an owned subtree);
//! - [`fm`] — Fourier–Motzkin elimination with model reconstruction, plus
//!   the incremental [`fm::Saturation`] the trail core extends and rolls
//!   back one constraint at a time;
//! - [`trail`] — the reversible-op trail + decision levels backing the
//!   iterative search (no recursion, no worklist cloning);
//! - [`solve`] — an iterative trail-backed tableau search over the boolean
//!   structure with eager theory pruning, the query **memo table**,
//!   push/pop assumption frames, and the public [`Solver`] API.
//!
//! # Cache-keying discipline
//!
//! Three layers of caching, all keyed by interned ids:
//!
//! 1. **Node interning** ([`TermArena`]): smart constructors fold and then
//!    dedup, so equal subterms are built once and compared by id.
//! 2. **Abstraction symbols** ([`normalize::Normalizer`]): non-linear atoms
//!    map to canonical booleans via `(TermId, Rel)` keys.
//! 3. **Whole queries** ([`Solver`]): `check`/`prove` fold the query into
//!    one conjunction id and memoize the result under that conjunction's
//!    structural [`Fingerprint`]. The key carries no arena identity, so a
//!    [`QueryMemo`] shared between solvers on different threads answers a
//!    query one thread already solved even though each thread interns into
//!    its own arena shard — and structurally different formulas can never
//!    alias (up to 128-bit hash collisions). Query results depend only on
//!    formula structure, so the memo is sound by construction; hits are
//!    counted in [`SolverStats::cache_hits`].
//!
//! The pay-off is on the Houdini hot path: consecution rounds re-prove the
//! surviving candidate set with one candidate dropped, so the unchanged
//! majority of queries is answered by a hash lookup (see
//! `shadowdp-verify`'s inductive engine, which keeps its fresh-symbol
//! naming per-round deterministic precisely to maximize these hits).
//!
//! # Soundness of abstraction
//!
//! Atoms the linearizer cannot handle (products of unknowns, `mod` with a
//! symbolic modulus) are replaced by fresh boolean variables. Abstraction
//! only *adds* models, so `Unsat` answers — and therefore `Proved` answers
//! from [`Solver::prove`] — remain sound. `Sat` answers whose model touches
//! an abstracted atom are flagged [`Model::possibly_spurious`].
//!
//! # Examples
//!
//! ```
//! use shadowdp_solver::{Solver, Term};
//!
//! let solver = Solver::new();
//! let x = Term::real_var("x");
//! // prove:  x >= 1  ⊢  2*x > 1
//! let hyp = x.ge(Term::int(1));
//! let goal = Term::int(2).mul(x).gt(Term::int(1));
//! assert!(solver.prove(&[hyp], &goal).is_proved());
//! // the identical query is now answered from the memo table
//! assert!(solver.prove(&[hyp], &goal).is_proved());
//! assert_eq!(solver.stats().cache_hits, 1);
//! ```

pub mod fm;
pub mod linear;
pub mod normalize;
pub mod solve;
pub mod term;
pub mod trail;

pub use fm::{Constraint, Rel};
pub use linear::LinExpr;
pub use solve::{Budget, CheckResult, Model, ProveResult, QueryMemo, Solver, SolverStats};
#[allow(deprecated)]
pub use term::with_global_arena;
pub use term::{with_shard, Fingerprint, Symbol, Term, TermArena, TermId, TermNode};
