//! An SMT-lite decision procedure for quantifier-free linear rational
//! arithmetic (QF-LRA) with boolean structure.
//!
//! This crate stands in for the Z3 / MathSAT / SMTInterpol backends the
//! ShadowDP paper uses: the type system's side conditions ((T-ODot) branch
//! consistency, (T-Laplace) injectivity) and the verifier's verification
//! conditions are all QF-LRA after the paper's own linearization rewrites.
//!
//! Architecture:
//!
//! - [`term`] — a two-sorted term language (reals and booleans) with `ite`,
//!   `abs`, and the usual connectives;
//! - [`linear`] — linear normal form `c + Σ aᵢ·xᵢ`;
//! - [`normalize`] — desugaring (`abs`/`ite` lifting, implication
//!   elimination), NNF, and *sound abstraction* of non-linear atoms by fresh
//!   boolean symbols;
//! - [`fm`] — Fourier–Motzkin elimination with model reconstruction;
//! - [`solve`] — a tableau-style search over the boolean structure with
//!   eager theory pruning, and the public [`Solver`] API.
//!
//! # Soundness of abstraction
//!
//! Atoms the linearizer cannot handle (products of unknowns, `mod` with a
//! symbolic modulus) are replaced by fresh boolean variables. Abstraction
//! only *adds* models, so `Unsat` answers — and therefore `Proved` answers
//! from [`Solver::prove`] — remain sound. `Sat` answers whose model touches
//! an abstracted atom are flagged [`Model::possibly_spurious`].
//!
//! # Examples
//!
//! ```
//! use shadowdp_solver::{Solver, Term};
//!
//! let solver = Solver::new();
//! let x = Term::real_var("x");
//! // prove:  x >= 1  ⊢  2*x > 1
//! let hyp = x.clone().ge(Term::int(1));
//! let goal = Term::int(2).mul(x).gt(Term::int(1));
//! assert!(solver.prove(&[hyp], &goal).is_proved());
//! ```

pub mod fm;
pub mod linear;
pub mod normalize;
pub mod solve;
pub mod term;

pub use fm::{Constraint, Rel};
pub use linear::LinExpr;
pub use solve::{CheckResult, Model, ProveResult, Solver, SolverStats};
pub use term::Term;
