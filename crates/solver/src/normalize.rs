//! Normalization: desugaring, `ite`/`abs` lifting, NNF, and sound
//! abstraction of non-linear atoms.
//!
//! The output is a [`Formula`] whose leaves are either boolean variables or
//! linear constraints, suitable for the tableau search in [`crate::solve`].
//! Normalization runs against a [`TermArena`]: recursion walks interned
//! nodes, and the `ite`/`abs` case splits intern their rewritten terms back
//! into the same arena (where hash-consing dedups the shared structure).
//!
//! # Shard-discipline audit
//!
//! The solver calls [`Normalizer::normalize`] while holding this thread's
//! arena-shard borrow ([`crate::term::with_shard`]), so nothing on this
//! path may touch the chainable `TermId` API — every term is built through
//! the `&mut TermArena` handle threaded down the recursion, which makes
//! shard re-entry impossible by construction. The one other lock this path
//! takes is the process-wide [`Symbol`] interner (in [`Normalizer`]'s
//! abstraction-cache path, minting `$absN` booleans): that interner is a
//! leaf lock that never calls back into arena or solver code, so the
//! acquisition order shard → interner cannot deadlock and is safe from any
//! number of threads.

use std::collections::HashMap;

use shadowdp_num::Rat;

use crate::fm::{Constraint, Rel};
use crate::linear::LinExpr;
use crate::term::{Symbol, TermArena, TermId, TermNode};

/// A normalized formula in negation normal form.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// A boolean variable or its negation.
    BLit(Symbol, bool),
    /// A linear constraint `lin ⊙ 0` (negations already pushed into the
    /// relation).
    Atom(Constraint),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

/// Normalization context: gensym for abstraction symbols, and a record of
/// whether any abstraction happened.
#[derive(Debug, Default)]
pub struct Normalizer {
    fresh: u64,
    /// Whether any non-linear atom was abstracted away. When true, `Sat`
    /// models may be spurious (but `Unsat` remains sound).
    pub abstracted: bool,
    /// Canonical abstraction symbols: structurally identical non-linear
    /// atoms share one boolean, so hypotheses can still entail goals that
    /// repeat them (e.g. a branch guard `(i+1) % M == 0` re-asserted).
    /// Keyed by interned id — equal structure is equal id, so the lookup
    /// is a u32 hash instead of a deep tree clone + deep hash.
    cache: HashMap<(TermId, Rel), Symbol>,
}

/// Result of linearizing a numeric term: either a linear expression or a
/// marker that the term was non-linear.
enum Linearized {
    Lin(LinExpr),
    NonLinear,
}

impl Normalizer {
    /// Creates a fresh normalizer.
    pub fn new() -> Normalizer {
        Normalizer::default()
    }

    fn fresh_bool(&mut self) -> Formula {
        self.fresh += 1;
        self.abstracted = true;
        Formula::BLit(Symbol::intern(&format!("$abs{}", self.fresh)), true)
    }

    /// Normalizes a boolean-sorted term into NNF with linear atoms.
    ///
    /// `polarity = true` normalizes `t`, `false` normalizes `¬t`.
    pub fn normalize(&mut self, arena: &mut TermArena, t: TermId, polarity: bool) -> Formula {
        // The n-ary connectives are walked by index so their child vectors
        // are never cloned; every other variant holds only `Copy` data, so
        // the `clone()` below is an allocation-free copy of a few words.
        if let TermNode::And(_) | TermNode::Or(_) = arena.node(t) {
            let conjunctive = matches!(arena.node(t), TermNode::And(_));
            let len = nary_len(arena, t);
            let mut parts = Vec::with_capacity(len);
            for i in 0..len {
                let child = nary_child(arena, t, i);
                parts.push(self.normalize(arena, child, polarity));
            }
            return if conjunctive == polarity {
                mk_and(parts)
            } else {
                mk_or(parts)
            };
        }
        match arena.node(t).clone() {
            TermNode::BConst(b) => Formula::Const(b == polarity),
            TermNode::BVar(v) => Formula::BLit(v, polarity),
            TermNode::Not(inner) => self.normalize(arena, inner, !polarity),
            TermNode::Implies(a, b) => {
                // a => b  ==  ¬a ∨ b
                if polarity {
                    let na = self.normalize(arena, a, false);
                    let nb = self.normalize(arena, b, true);
                    mk_or(vec![na, nb])
                } else {
                    // ¬(a => b) == a ∧ ¬b
                    let pa = self.normalize(arena, a, true);
                    let nb = self.normalize(arena, b, false);
                    mk_and(vec![pa, nb])
                }
            }
            TermNode::Iff(a, b) => {
                if polarity {
                    // a <=> b  ==  (a ∧ b) ∨ (¬a ∧ ¬b)
                    let pp = mk_and(vec![
                        self.normalize(arena, a, true),
                        self.normalize(arena, b, true),
                    ]);
                    let nn = mk_and(vec![
                        self.normalize(arena, a, false),
                        self.normalize(arena, b, false),
                    ]);
                    mk_or(vec![pp, nn])
                } else {
                    // ¬(a <=> b) == (a ∧ ¬b) ∨ (¬a ∧ b)
                    let pn = mk_and(vec![
                        self.normalize(arena, a, true),
                        self.normalize(arena, b, false),
                    ]);
                    let np = mk_and(vec![
                        self.normalize(arena, a, false),
                        self.normalize(arena, b, true),
                    ]);
                    mk_or(vec![pn, np])
                }
            }
            TermNode::Le(a, b) => self.comparison(arena, a, b, Rel::Le, polarity),
            TermNode::Lt(a, b) => self.comparison(arena, a, b, Rel::Lt, polarity),
            TermNode::EqNum(a, b) => self.comparison(arena, a, b, Rel::Eq, polarity),
            // A boolean-sorted `ite`.
            TermNode::Ite(c, x, y) => {
                // (c ∧ x) ∨ (¬c ∧ y), with polarity applied to the branches.
                let ct = self.normalize(arena, c, true);
                let cf = self.normalize(arena, c, false);
                let xt = self.normalize(arena, x, polarity);
                let yt = self.normalize(arena, y, polarity);
                mk_or(vec![mk_and(vec![ct, xt]), mk_and(vec![cf, yt])])
            }
            // A real-sorted term where a boolean was expected is a caller
            // bug; abstract it soundly rather than panic so verification
            // stays conservative.
            _ => self.fresh_bool(),
        }
    }

    /// Normalizes `a ⊙ b` (or its negation) into atoms, lifting `ite`/`abs`
    /// out of the numeric arguments.
    fn comparison(
        &mut self,
        arena: &mut TermArena,
        a: TermId,
        b: TermId,
        rel: Rel,
        polarity: bool,
    ) -> Formula {
        // First lift any ite/abs inside the numeric term by case-splitting
        // the whole comparison.
        let diff = arena.sub(a, b);
        if let Some((cond, then_t, else_t)) = find_ite(arena, diff) {
            // diff = C[ite(cond, x, y)]  =>  (cond ∧ C[x] ⊙ 0) ∨ (¬cond ∧ C[y] ⊙ 0)
            let zero = arena.int(0);
            let ct = self.normalize(arena, cond, true);
            let cf = self.normalize(arena, cond, false);
            let ft = self.comparison(arena, then_t, zero, rel, polarity);
            let fe = self.comparison(arena, else_t, zero, rel, polarity);
            return mk_or(vec![mk_and(vec![ct, ft]), mk_and(vec![cf, fe])]);
        }
        match linearize(arena, diff) {
            Linearized::Lin(lin) => {
                // Ground atoms evaluate immediately.
                if lin.is_constant() {
                    let c = lin.constant_part();
                    let holds = match rel {
                        Rel::Le => c <= Rat::ZERO,
                        Rel::Lt => c < Rat::ZERO,
                        Rel::Eq => c.is_zero(),
                    };
                    return Formula::Const(holds == polarity);
                }
                if polarity {
                    Formula::Atom(Constraint { lin, rel })
                } else {
                    match rel {
                        // ¬(lin <= 0)  ==  -lin < 0
                        Rel::Le => Formula::Atom(Constraint::lt0(-lin)),
                        // ¬(lin < 0)  ==  -lin <= 0
                        Rel::Lt => Formula::Atom(Constraint::le0(-lin)),
                        // ¬(lin == 0)  ==  lin < 0 ∨ -lin < 0
                        Rel::Eq => mk_or(vec![
                            Formula::Atom(Constraint::lt0(lin.clone())),
                            Formula::Atom(Constraint::lt0(-lin)),
                        ]),
                    }
                }
            }
            Linearized::NonLinear => {
                // Canonical abstraction: equal atoms (equal ids) share a
                // symbol, and polarity is preserved through it.
                let key = (diff, rel);
                let name = match self.cache.get(&key) {
                    Some(n) => {
                        // A cached abstraction still makes the output
                        // formula abstract — a long-lived normalizer (the
                        // solver's pushed-assumption context) resets the
                        // flag per query, so a hit must re-taint it.
                        self.abstracted = true;
                        *n
                    }
                    None => {
                        self.fresh += 1;
                        self.abstracted = true;
                        let n = Symbol::intern(&format!("$abs{}", self.fresh));
                        self.cache.insert(key, n);
                        n
                    }
                };
                Formula::BLit(name, polarity)
            }
        }
    }
}

/// Length of an n-ary node's child list.
fn nary_len(arena: &TermArena, t: TermId) -> usize {
    match arena.node(t) {
        TermNode::Add(ts) | TermNode::And(ts) | TermNode::Or(ts) => ts.len(),
        _ => unreachable!("nary_len on a non-n-ary node"),
    }
}

/// The `i`th child of an n-ary node.
fn nary_child(arena: &TermArena, t: TermId, i: usize) -> TermId {
    match arena.node(t) {
        TermNode::Add(ts) | TermNode::And(ts) | TermNode::Or(ts) => ts[i],
        _ => unreachable!("nary_child on a non-n-ary node"),
    }
}

/// Finds the leftmost `ite`/`abs` inside `t`; if found, returns the guard
/// and the two copies of `t` with that subterm replaced by its branches.
/// Rewritten terms are interned back into the arena (raw interning — the
/// surrounding structure was already built by the smart constructors).
fn find_ite(arena: &mut TermArena, t: TermId) -> Option<(TermId, TermId, TermId)> {
    // `Add` is scanned by index (no vector clone unless a split is actually
    // found); the remaining variants carry only `Copy` data, so the
    // `clone()` below allocates nothing.
    if matches!(arena.node(t), TermNode::Add(_)) {
        let len = nary_len(arena, t);
        for i in 0..len {
            let sub = nary_child(arena, t, i);
            if let Some((c, a, b)) = find_ite(arena, sub) {
                let ts = match arena.node(t) {
                    TermNode::Add(ts) => ts.clone(),
                    _ => unreachable!(),
                };
                let mut with_a = ts.clone();
                with_a[i] = a;
                let mut with_b = ts;
                with_b[i] = b;
                let wa = arena.intern(TermNode::Add(with_a));
                let wb = arena.intern(TermNode::Add(with_b));
                return Some((c, wa, wb));
            }
        }
        return None;
    }
    match arena.node(t).clone() {
        TermNode::RConst(_) | TermNode::RVar(_) | TermNode::BConst(_) | TermNode::BVar(_) => None,
        TermNode::Abs(inner) => {
            // |x| = ite(x >= 0, x, -x); try to split inner first so nested
            // constructs unwind outside-in deterministically.
            if let Some((c, a, b)) = find_ite(arena, inner) {
                let wa = arena.intern(TermNode::Abs(a));
                let wb = arena.intern(TermNode::Abs(b));
                return Some((c, wa, wb));
            }
            let zero = arena.int(0);
            let cond = arena.ge(inner, zero);
            let neg = arena.neg(inner);
            Some((cond, inner, neg))
        }
        TermNode::Ite(c, x, y) => Some((c, x, y)),
        TermNode::Neg(inner) => find_ite(arena, inner).map(|(c, a, b)| {
            let wa = arena.intern(TermNode::Neg(a));
            let wb = arena.intern(TermNode::Neg(b));
            (c, wa, wb)
        }),
        TermNode::Mul(x, y) => {
            if let Some((c, a, b)) = find_ite(arena, x) {
                let wa = arena.intern(TermNode::Mul(a, y));
                let wb = arena.intern(TermNode::Mul(b, y));
                return Some((c, wa, wb));
            }
            find_ite(arena, y).map(|(c, a, b)| {
                let wa = arena.intern(TermNode::Mul(x, a));
                let wb = arena.intern(TermNode::Mul(x, b));
                (c, wa, wb)
            })
        }
        TermNode::Div(x, y) => {
            if let Some((c, a, b)) = find_ite(arena, x) {
                let wa = arena.intern(TermNode::Div(a, y));
                let wb = arena.intern(TermNode::Div(b, y));
                return Some((c, wa, wb));
            }
            find_ite(arena, y).map(|(c, a, b)| {
                let wa = arena.intern(TermNode::Div(x, a));
                let wb = arena.intern(TermNode::Div(x, b));
                (c, wa, wb)
            })
        }
        TermNode::Mod(x, y) => {
            if let Some((c, a, b)) = find_ite(arena, x) {
                let wa = arena.intern(TermNode::Mod(a, y));
                let wb = arena.intern(TermNode::Mod(b, y));
                return Some((c, wa, wb));
            }
            find_ite(arena, y).map(|(c, a, b)| {
                let wa = arena.intern(TermNode::Mod(x, a));
                let wb = arena.intern(TermNode::Mod(x, b));
                (c, wa, wb)
            })
        }
        // Comparisons and connectives inside numeric position do not occur;
        // their ites are handled at the boolean level.
        _ => None,
    }
}

/// Attempts to put an (ite-free) numeric term into linear normal form.
fn linearize(arena: &TermArena, t: TermId) -> Linearized {
    match arena.node(t) {
        TermNode::RConst(r) => Linearized::Lin(LinExpr::constant(*r)),
        TermNode::RVar(v) => Linearized::Lin(LinExpr::var(*v)),
        TermNode::Add(ts) => {
            let mut acc = LinExpr::zero();
            for sub in ts {
                match linearize(arena, *sub) {
                    Linearized::Lin(l) => acc = acc + l,
                    Linearized::NonLinear => return Linearized::NonLinear,
                }
            }
            Linearized::Lin(acc)
        }
        TermNode::Neg(inner) => match linearize(arena, *inner) {
            Linearized::Lin(l) => Linearized::Lin(-l),
            nl => nl,
        },
        TermNode::Mul(a, b) => match (linearize(arena, *a), linearize(arena, *b)) {
            (Linearized::Lin(la), Linearized::Lin(lb)) => {
                if la.is_constant() {
                    Linearized::Lin(lb.scale(la.constant_part()))
                } else if lb.is_constant() {
                    Linearized::Lin(la.scale(lb.constant_part()))
                } else {
                    Linearized::NonLinear
                }
            }
            _ => Linearized::NonLinear,
        },
        TermNode::Div(a, b) => match (linearize(arena, *a), linearize(arena, *b)) {
            (Linearized::Lin(la), Linearized::Lin(lb)) => {
                if lb.is_constant() && !lb.constant_part().is_zero() {
                    Linearized::Lin(la.scale(Rat::ONE / lb.constant_part()))
                } else {
                    Linearized::NonLinear
                }
            }
            _ => Linearized::NonLinear,
        },
        TermNode::Mod(a, b) => match (linearize(arena, *a), linearize(arena, *b)) {
            (Linearized::Lin(la), Linearized::Lin(lb))
                if la.is_constant() && lb.is_constant() && !lb.constant_part().is_zero() =>
            {
                // Constant fold: a mod b over rationals via floored division
                // (operands are integers in practice).
                let a = la.constant_part();
                let b = lb.constant_part();
                let q = Rat::int((a / b).floor());
                Linearized::Lin(LinExpr::constant(a - q * b))
            }
            _ => Linearized::NonLinear,
        },
        // Abs/Ite were lifted before linearization; anything else (booleans
        // in numeric position) is non-linear.
        _ => Linearized::NonLinear,
    }
}

fn mk_and(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::new();
    for p in parts {
        match p {
            Formula::Const(true) => {}
            Formula::Const(false) => return Formula::Const(false),
            Formula::And(xs) => out.extend(xs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::Const(true),
        1 => out.pop().unwrap(),
        _ => Formula::And(out),
    }
}

fn mk_or(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::new();
    for p in parts {
        match p {
            Formula::Const(false) => {}
            Formula::Const(true) => return Formula::Const(true),
            Formula::Or(xs) => out.extend(xs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::Const(false),
        1 => out.pop().unwrap(),
        _ => Formula::Or(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{with_shard, Term};

    fn norm(t: Term) -> (Formula, bool) {
        let mut n = Normalizer::new();
        let f = with_shard(|arena| n.normalize(arena, t, true));
        (f, n.abstracted)
    }

    #[test]
    fn simple_atom() {
        let t = Term::real_var("x").le(Term::int(3));
        let (f, abs) = norm(t);
        assert!(!abs);
        match f {
            Formula::Atom(c) => {
                assert_eq!(c.rel, Rel::Le);
                assert_eq!(c.lin.coeff("x"), Rat::ONE);
                assert_eq!(c.lin.constant_part(), Rat::int(-3));
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn negation_flips_relation() {
        let t = Term::real_var("x").le(Term::int(3)).not();
        let (f, _) = norm(t);
        match f {
            Formula::Atom(c) => {
                assert_eq!(c.rel, Rel::Lt);
                // ¬(x - 3 <= 0) == 3 - x < 0
                assert_eq!(c.lin.coeff("x"), Rat::int(-1));
                assert_eq!(c.lin.constant_part(), Rat::int(3));
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn disequality_becomes_disjunction() {
        let t = Term::real_var("x").ne_num(Term::int(0));
        let (f, _) = norm(t);
        assert!(matches!(f, Formula::Or(ref xs) if xs.len() == 2), "{f:?}");
    }

    #[test]
    fn abs_lifts_to_case_split() {
        // |x| <= 1  ==  (x >= 0 ∧ x <= 1) ∨ (x < 0 ∧ -x <= 1)
        let t = Term::real_var("x").abs().le(Term::int(1));
        let (f, abs) = norm(t);
        assert!(!abs, "abs should not be abstracted");
        assert!(matches!(f, Formula::Or(_)), "{f:?}");
    }

    #[test]
    fn ite_lifts() {
        // (b ? 1 : 0) <= 0 == (b ∧ 1 <= 0) ∨ (¬b ∧ 0 <= 0) == ¬b
        let t = Term::ite(Term::bool_var("b"), Term::int(1), Term::int(0)).le(Term::int(0));
        let (f, _) = norm(t);
        assert_eq!(f, Formula::BLit("b".into(), false));
    }

    #[test]
    fn nonlinear_products_are_abstracted() {
        let t = Term::real_var("x")
            .mul(Term::real_var("y"))
            .le(Term::int(1));
        let (f, abstracted) = norm(t);
        assert!(abstracted);
        assert!(matches!(f, Formula::BLit(n, true) if n.as_str().starts_with("$abs")));
    }

    #[test]
    fn abstraction_cache_reuses_symbols_by_id() {
        // The same non-linear atom normalized twice through one Normalizer
        // shares the abstraction boolean (keyed by interned id).
        let atom = Term::real_var("x").mul(Term::real_var("y"));
        let t1 = atom.le(Term::int(1));
        let t2 = atom.le(Term::int(1)).not();
        let mut n = Normalizer::new();
        let (f1, f2) =
            with_shard(|arena| (n.normalize(arena, t1, true), n.normalize(arena, t2, true)));
        match (f1, f2) {
            (Formula::BLit(a, true), Formula::BLit(b, false)) => assert_eq!(a, b),
            other => panic!("expected shared abstraction literal, got {other:?}"),
        }
    }

    #[test]
    fn constant_mod_folds() {
        // 7 mod 2 == 1 folds all the way to true
        let t = Term::int(7).rem(Term::int(2)).eq_num(Term::int(1));
        let (f, abstracted) = norm(t);
        assert!(!abstracted);
        assert_eq!(f, Formula::Const(true));
        // 8 mod 2 == 1 folds to false
        let t = Term::int(8).rem(Term::int(2)).eq_num(Term::int(1));
        let (f, _) = norm(t);
        assert_eq!(f, Formula::Const(false));
    }

    #[test]
    fn symbolic_mod_is_abstracted() {
        let t = Term::real_var("i")
            .rem(Term::real_var("m"))
            .eq_num(Term::int(0));
        let (_, abstracted) = norm(t);
        assert!(abstracted);
    }

    #[test]
    fn implication_and_iff() {
        let a = Term::bool_var("a");
        let b = Term::bool_var("b");
        let (f, _) = norm(a.implies(b));
        assert!(matches!(f, Formula::Or(_)));
        let (f, _) = norm(a.iff(b));
        assert!(matches!(f, Formula::Or(_)));
    }

    #[test]
    fn division_by_constant_is_linear() {
        let t = Term::real_var("x").div(Term::int(4)).le(Term::int(1));
        let (f, abstracted) = norm(t);
        assert!(!abstracted);
        match f {
            Formula::Atom(c) => assert_eq!(c.lin.coeff("x"), Rat::new(1, 4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn division_by_symbol_is_abstracted() {
        let t = Term::real_var("x")
            .div(Term::real_var("n"))
            .le(Term::int(1));
        let (_, abstracted) = norm(t);
        assert!(abstracted);
    }
}
