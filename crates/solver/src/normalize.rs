//! Normalization: desugaring, `ite`/`abs` lifting, NNF, and sound
//! abstraction of non-linear atoms.
//!
//! The output is a [`Formula`] whose leaves are either boolean variables or
//! linear constraints, suitable for the tableau search in [`crate::solve`].

use shadowdp_num::Rat;

use crate::fm::{Constraint, Rel};
use crate::linear::LinExpr;
use crate::term::Term;

/// A normalized formula in negation normal form.
#[derive(Clone, Debug, PartialEq)]
pub enum Formula {
    /// Constant truth value.
    Const(bool),
    /// A boolean variable or its negation.
    BLit(String, bool),
    /// A linear constraint `lin ⊙ 0` (negations already pushed into the
    /// relation).
    Atom(Constraint),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
}

/// Normalization context: gensym for abstraction symbols, and a record of
/// whether any abstraction happened.
#[derive(Debug, Default)]
pub struct Normalizer {
    fresh: u64,
    /// Whether any non-linear atom was abstracted away. When true, `Sat`
    /// models may be spurious (but `Unsat` remains sound).
    pub abstracted: bool,
    /// Canonical abstraction symbols: syntactically identical non-linear
    /// atoms share one boolean, so hypotheses can still entail goals that
    /// repeat them (e.g. a branch guard `(i+1) % M == 0` re-asserted).
    cache: std::collections::HashMap<(Term, Rel), String>,
}

/// Result of linearizing a numeric term: either a linear expression or a
/// marker that the term was non-linear.
enum Linearized {
    Lin(LinExpr),
    NonLinear,
}

impl Normalizer {
    /// Creates a fresh normalizer.
    pub fn new() -> Normalizer {
        Normalizer::default()
    }

    fn fresh_bool(&mut self) -> Formula {
        self.fresh += 1;
        self.abstracted = true;
        Formula::BLit(format!("$abs{}", self.fresh), true)
    }

    /// Normalizes a boolean-sorted term into NNF with linear atoms.
    ///
    /// `polarity = true` normalizes `t`, `false` normalizes `¬t`.
    pub fn normalize(&mut self, t: &Term, polarity: bool) -> Formula {
        match t {
            Term::BConst(b) => Formula::Const(*b == polarity),
            Term::BVar(v) => Formula::BLit(v.clone(), polarity),
            Term::Not(inner) => self.normalize(inner, !polarity),
            Term::And(ts) => {
                let parts: Vec<Formula> =
                    ts.iter().map(|x| self.normalize(x, polarity)).collect();
                if polarity {
                    mk_and(parts)
                } else {
                    mk_or(parts)
                }
            }
            Term::Or(ts) => {
                let parts: Vec<Formula> =
                    ts.iter().map(|x| self.normalize(x, polarity)).collect();
                if polarity {
                    mk_or(parts)
                } else {
                    mk_and(parts)
                }
            }
            Term::Implies(a, b) => {
                // a => b  ==  ¬a ∨ b
                let na = self.normalize(a, !polarity);
                let nb = self.normalize(b, polarity);
                if polarity {
                    mk_or(vec![na, nb])
                } else {
                    // ¬(a => b) == a ∧ ¬b
                    let pa = self.normalize(a, true);
                    let nb2 = self.normalize(b, false);
                    mk_and(vec![pa, nb2])
                }
            }
            Term::Iff(a, b) => {
                // a <=> b  ==  (a ∧ b) ∨ (¬a ∧ ¬b)
                let pp = mk_and(vec![self.normalize(a, true), self.normalize(b, true)]);
                let nn = mk_and(vec![self.normalize(a, false), self.normalize(b, false)]);
                let f = mk_or(vec![pp, nn]);
                if polarity {
                    f
                } else {
                    // ¬(a <=> b) == (a ∧ ¬b) ∨ (¬a ∧ b)
                    let pn = mk_and(vec![self.normalize(a, true), self.normalize(b, false)]);
                    let np = mk_and(vec![self.normalize(a, false), self.normalize(b, true)]);
                    mk_or(vec![pn, np])
                }
            }
            Term::Le(a, b) => self.comparison(a, b, Rel::Le, polarity),
            Term::Lt(a, b) => self.comparison(a, b, Rel::Lt, polarity),
            Term::EqNum(a, b) => self.comparison(a, b, Rel::Eq, polarity),
            // Numeric terms in boolean position / unknown structure: treat
            // an `ite` of booleans.
            Term::Ite(c, x, y) => {
                // (c ∧ x) ∨ (¬c ∧ y), with polarity applied to the branches.
                let ct = self.normalize(c, true);
                let cf = self.normalize(c, false);
                let xt = self.normalize(x, polarity);
                let yt = self.normalize(y, polarity);
                mk_or(vec![mk_and(vec![ct, xt]), mk_and(vec![cf, yt])])
            }
            // A real-sorted term where a boolean was expected is a caller
            // bug; abstract it soundly rather than panic so verification
            // stays conservative.
            _ => self.fresh_bool(),
        }
    }

    /// Normalizes `a ⊙ b` (or its negation) into atoms, lifting `ite`/`abs`
    /// out of the numeric arguments.
    fn comparison(&mut self, a: &Term, b: &Term, rel: Rel, polarity: bool) -> Formula {
        // First lift any ite/abs inside the numeric term by case-splitting
        // the whole comparison.
        let diff = a.clone().sub(b.clone());
        if let Some((cond, then_t, else_t)) = find_split(&diff) {
            // diff = C[ite(cond, x, y)]  =>  (cond ∧ C[x] ⊙ 0) ∨ (¬cond ∧ C[y] ⊙ 0)
            let ct = self.normalize(&cond, true);
            let cf = self.normalize(&cond, false);
            let ft = self.comparison(&then_t, &Term::int(0), rel, polarity);
            let fe = self.comparison(&else_t, &Term::int(0), rel, polarity);
            return mk_or(vec![mk_and(vec![ct, ft]), mk_and(vec![cf, fe])]);
        }
        match linearize(&diff) {
            Linearized::Lin(lin) => {
                // Ground atoms evaluate immediately.
                if lin.is_constant() {
                    let c = lin.constant_part();
                    let holds = match rel {
                        Rel::Le => c <= Rat::ZERO,
                        Rel::Lt => c < Rat::ZERO,
                        Rel::Eq => c.is_zero(),
                    };
                    return Formula::Const(holds == polarity);
                }
                if polarity {
                    Formula::Atom(Constraint { lin, rel })
                } else {
                    match rel {
                        // ¬(lin <= 0)  ==  -lin < 0
                        Rel::Le => Formula::Atom(Constraint::lt0(-lin)),
                        // ¬(lin < 0)  ==  -lin <= 0
                        Rel::Lt => Formula::Atom(Constraint::le0(-lin)),
                        // ¬(lin == 0)  ==  lin < 0 ∨ -lin < 0
                        Rel::Eq => mk_or(vec![
                            Formula::Atom(Constraint::lt0(lin.clone())),
                            Formula::Atom(Constraint::lt0(-lin)),
                        ]),
                    }
                }
            }
            Linearized::NonLinear => {
                // Canonical abstraction: equal atoms share a symbol, and
                // polarity is preserved through it.
                let key = (diff.clone(), rel);
                let name = match self.cache.get(&key) {
                    Some(n) => n.clone(),
                    None => {
                        self.fresh += 1;
                        self.abstracted = true;
                        let n = format!("$abs{}", self.fresh);
                        self.cache.insert(key, n.clone());
                        n
                    }
                };
                Formula::BLit(name, polarity)
            }
        }
    }
}

/// Searches a numeric term for the first `ite`/`abs` subterm that requires
/// case splitting. Returns `(cond, term_with_then, term_with_else)`.
fn find_split(t: &Term) -> Option<(Term, Term, Term)> {
    find_ite(t)
}

/// Finds the leftmost `ite`/`abs` inside `t`; if found, returns the guard
/// and the two copies of `t` with that subterm replaced by its branches.
fn find_ite(t: &Term) -> Option<(Term, Term, Term)> {
    match t {
        Term::RConst(_) | Term::RVar(_) | Term::BConst(_) | Term::BVar(_) => None,
        Term::Abs(inner) => {
            // |x| = ite(x >= 0, x, -x); try to split inner first so nested
            // constructs unwind outside-in deterministically.
            if let Some((c, a, b)) = find_ite(inner) {
                return Some((c, Term::Abs(Box::new(a)), Term::Abs(Box::new(b))));
            }
            let cond = inner.clone().ge(Term::int(0));
            Some((cond, (**inner).clone(), inner.clone().neg()))
        }
        Term::Ite(c, x, y) => Some((
            (**c).clone(),
            (**x).clone(),
            (**y).clone(),
        )),
        Term::Add(ts) => {
            for (i, sub) in ts.iter().enumerate() {
                if let Some((c, a, b)) = find_ite(sub) {
                    let mut with_a = ts.clone();
                    with_a[i] = a;
                    let mut with_b = ts.clone();
                    with_b[i] = b;
                    return Some((c, Term::Add(with_a), Term::Add(with_b)));
                }
            }
            None
        }
        Term::Neg(inner) => find_ite(inner)
            .map(|(c, a, b)| (c, Term::Neg(Box::new(a)), Term::Neg(Box::new(b)))),
        Term::Mul(x, y) => {
            if let Some((c, a, b)) = find_ite(x) {
                return Some((
                    c,
                    Term::Mul(Box::new(a), y.clone()),
                    Term::Mul(Box::new(b), y.clone()),
                ));
            }
            find_ite(y).map(|(c, a, b)| {
                (
                    c,
                    Term::Mul(x.clone(), Box::new(a)),
                    Term::Mul(x.clone(), Box::new(b)),
                )
            })
        }
        Term::Div(x, y) => {
            if let Some((c, a, b)) = find_ite(x) {
                return Some((
                    c,
                    Term::Div(Box::new(a), y.clone()),
                    Term::Div(Box::new(b), y.clone()),
                ));
            }
            find_ite(y).map(|(c, a, b)| {
                (
                    c,
                    Term::Div(x.clone(), Box::new(a)),
                    Term::Div(x.clone(), Box::new(b)),
                )
            })
        }
        Term::Mod(x, y) => {
            if let Some((c, a, b)) = find_ite(x) {
                return Some((
                    c,
                    Term::Mod(Box::new(a), y.clone()),
                    Term::Mod(Box::new(b), y.clone()),
                ));
            }
            find_ite(y).map(|(c, a, b)| {
                (
                    c,
                    Term::Mod(x.clone(), Box::new(a)),
                    Term::Mod(x.clone(), Box::new(b)),
                )
            })
        }
        // Comparisons and connectives inside numeric position do not occur;
        // their ites are handled at the boolean level.
        _ => None,
    }
}

/// Attempts to put an (ite-free) numeric term into linear normal form.
fn linearize(t: &Term) -> Linearized {
    match t {
        Term::RConst(r) => Linearized::Lin(LinExpr::constant(*r)),
        Term::RVar(v) => Linearized::Lin(LinExpr::var(v.clone())),
        Term::Add(ts) => {
            let mut acc = LinExpr::zero();
            for sub in ts {
                match linearize(sub) {
                    Linearized::Lin(l) => acc = acc + l,
                    Linearized::NonLinear => return Linearized::NonLinear,
                }
            }
            Linearized::Lin(acc)
        }
        Term::Neg(inner) => match linearize(inner) {
            Linearized::Lin(l) => Linearized::Lin(-l),
            nl => nl,
        },
        Term::Mul(a, b) => match (linearize(a), linearize(b)) {
            (Linearized::Lin(la), Linearized::Lin(lb)) => {
                if la.is_constant() {
                    Linearized::Lin(lb.scale(la.constant_part()))
                } else if lb.is_constant() {
                    Linearized::Lin(la.scale(lb.constant_part()))
                } else {
                    Linearized::NonLinear
                }
            }
            _ => Linearized::NonLinear,
        },
        Term::Div(a, b) => match (linearize(a), linearize(b)) {
            (Linearized::Lin(la), Linearized::Lin(lb)) => {
                if lb.is_constant() && !lb.constant_part().is_zero() {
                    Linearized::Lin(la.scale(Rat::ONE / lb.constant_part()))
                } else {
                    Linearized::NonLinear
                }
            }
            _ => Linearized::NonLinear,
        },
        Term::Mod(a, b) => match (linearize(a), linearize(b)) {
            (Linearized::Lin(la), Linearized::Lin(lb))
                if la.is_constant() && lb.is_constant() && !lb.constant_part().is_zero() =>
            {
                // Constant fold: a mod b over rationals via floored division
                // (operands are integers in practice).
                let a = la.constant_part();
                let b = lb.constant_part();
                let q = Rat::int((a / b).floor());
                Linearized::Lin(LinExpr::constant(a - q * b))
            }
            _ => Linearized::NonLinear,
        },
        // Abs/Ite were lifted before linearization; anything else (booleans
        // in numeric position) is non-linear.
        _ => Linearized::NonLinear,
    }
}

fn mk_and(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::new();
    for p in parts {
        match p {
            Formula::Const(true) => {}
            Formula::Const(false) => return Formula::Const(false),
            Formula::And(xs) => out.extend(xs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::Const(true),
        1 => out.pop().unwrap(),
        _ => Formula::And(out),
    }
}

fn mk_or(parts: Vec<Formula>) -> Formula {
    let mut out = Vec::new();
    for p in parts {
        match p {
            Formula::Const(false) => {}
            Formula::Const(true) => return Formula::Const(true),
            Formula::Or(xs) => out.extend(xs),
            other => out.push(other),
        }
    }
    match out.len() {
        0 => Formula::Const(false),
        1 => out.pop().unwrap(),
        _ => Formula::Or(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(t: &Term) -> (Formula, bool) {
        let mut n = Normalizer::new();
        let f = n.normalize(t, true);
        (f, n.abstracted)
    }

    #[test]
    fn simple_atom() {
        let t = Term::real_var("x").le(Term::int(3));
        let (f, abs) = norm(&t);
        assert!(!abs);
        match f {
            Formula::Atom(c) => {
                assert_eq!(c.rel, Rel::Le);
                assert_eq!(c.lin.coeff("x"), Rat::ONE);
                assert_eq!(c.lin.constant_part(), Rat::int(-3));
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn negation_flips_relation() {
        let t = Term::real_var("x").le(Term::int(3)).not();
        let (f, _) = norm(&t);
        match f {
            Formula::Atom(c) => {
                assert_eq!(c.rel, Rel::Lt);
                // ¬(x - 3 <= 0) == 3 - x < 0
                assert_eq!(c.lin.coeff("x"), Rat::int(-1));
                assert_eq!(c.lin.constant_part(), Rat::int(3));
            }
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn disequality_becomes_disjunction() {
        let t = Term::real_var("x").ne_num(Term::int(0));
        let (f, _) = norm(&t);
        assert!(matches!(f, Formula::Or(ref xs) if xs.len() == 2), "{f:?}");
    }

    #[test]
    fn abs_lifts_to_case_split() {
        // |x| <= 1  ==  (x >= 0 ∧ x <= 1) ∨ (x < 0 ∧ -x <= 1)
        let t = Term::real_var("x").abs().le(Term::int(1));
        let (f, abs) = norm(&t);
        assert!(!abs, "abs should not be abstracted");
        assert!(matches!(f, Formula::Or(_)), "{f:?}");
    }

    #[test]
    fn ite_lifts() {
        // (b ? 1 : 0) <= 0 == (b ∧ 1 <= 0) ∨ (¬b ∧ 0 <= 0) == ¬b
        let t = Term::ite(Term::bool_var("b"), Term::int(1), Term::int(0)).le(Term::int(0));
        let (f, _) = norm(&t);
        assert_eq!(f, Formula::BLit("b".into(), false));
    }

    #[test]
    fn nonlinear_products_are_abstracted() {
        let t = Term::real_var("x")
            .mul(Term::real_var("y"))
            .le(Term::int(1));
        let (f, abstracted) = norm(&t);
        assert!(abstracted);
        assert!(matches!(f, Formula::BLit(ref n, true) if n.starts_with("$abs")));
    }

    #[test]
    fn constant_mod_folds() {
        // 7 mod 2 == 1 folds all the way to true
        let t = Term::int(7).rem(Term::int(2)).eq_num(Term::int(1));
        let (f, abstracted) = norm(&t);
        assert!(!abstracted);
        assert_eq!(f, Formula::Const(true));
        // 8 mod 2 == 1 folds to false
        let t = Term::int(8).rem(Term::int(2)).eq_num(Term::int(1));
        let (f, _) = norm(&t);
        assert_eq!(f, Formula::Const(false));
    }

    #[test]
    fn symbolic_mod_is_abstracted() {
        let t = Term::real_var("i")
            .rem(Term::real_var("m"))
            .eq_num(Term::int(0));
        let (_, abstracted) = norm(&t);
        assert!(abstracted);
    }

    #[test]
    fn implication_and_iff() {
        let a = Term::bool_var("a");
        let b = Term::bool_var("b");
        let (f, _) = norm(&a.clone().implies(b.clone()));
        assert!(matches!(f, Formula::Or(_)));
        let (f, _) = norm(&a.iff(b));
        assert!(matches!(f, Formula::Or(_)));
    }

    #[test]
    fn division_by_constant_is_linear() {
        let t = Term::real_var("x")
            .div(Term::int(4))
            .le(Term::int(1));
        let (f, abstracted) = norm(&t);
        assert!(!abstracted);
        match f {
            Formula::Atom(c) => assert_eq!(c.lin.coeff("x"), Rat::new(1, 4)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn division_by_symbol_is_abstracted() {
        let t = Term::real_var("x")
            .div(Term::real_var("n"))
            .le(Term::int(1));
        let (_, abstracted) = norm(&t);
        assert!(abstracted);
    }
}
