//! The solver's two-sorted term language, hash-consed into **per-thread
//! arena shards**.
//!
//! Terms live in a [`TermArena`] that deduplicates structurally equal
//! nodes: a term is represented by a [`TermId`] — a `Copy`-able `u32`
//! handle — and two terms are structurally equal **iff** their ids are
//! equal *within one arena*. This makes equality and hashing O(1), makes
//! `clone()` free, and lets the solver memoize whole validity queries (see
//! [`crate::solve::Solver`]).
//!
//! Every interned node additionally carries a 128-bit structural
//! [`Fingerprint`], computed incrementally at intern time from the node's
//! tag, leaf data, and child fingerprints. Fingerprints are **arena- and
//! thread-independent**: two arenas (on any threads) interning the same
//! structure produce the same fingerprint, which is what lets the solver's
//! validity-query memo survive across threads without sharing an arena.
//!
//! Variable names are interned too: [`Symbol`] is a `u32` handle into a
//! process-wide string table, so environment and model lookups compare ids
//! instead of hashing strings. (Fingerprints hash the *name*, not the
//! symbol id, so they do not depend on interning order.)
//!
//! Two ways to build terms:
//!
//! - the **thread shard** (what almost all code uses): the chainable
//!   methods on [`TermId`] (`a.add(b)`, `a.le(b)`, `Term::real_var("x")`,
//!   …) intern into this thread's own arena — no process-wide lock, so
//!   per-algorithm verification parallelizes across threads without
//!   contention. Ids from this API are freely shareable **within the
//!   thread** that built them; work that crosses threads exchanges sources,
//!   reports, and fingerprints, never raw ids.
//! - an **explicit [`TermArena`]** for isolation (property tests, fuzzing)
//!   or for batch building under one borrow ([`with_shard`]). Ids from
//!   different arenas must not be mixed; the solver's memo keys on
//!   structural fingerprints, so results *transfer* across arenas exactly
//!   when the structures match and can never alias otherwise.
//!
//! Construction helpers implement the same smart-constructor folding as the
//! original deep-tree representation (constant folding, identity/annihilator
//! elimination, n-ary flattening), so verification conditions stay small.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use shadowdp_num::Rat;

// ---------------------------------------------------------------------------
// Symbols
// ---------------------------------------------------------------------------

/// An interned variable name.
///
/// `Symbol` is a `u32` into a process-wide, append-only string table;
/// comparisons and hashing are integer operations, and [`Symbol::as_str`]
/// is a table load returning a `'static` string.
///
/// Ordering is by interning order (first intern wins the smaller id), not
/// lexicographic — deterministic within a process, which is all the solver
/// needs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

impl Symbol {
    /// Interns a name.
    pub fn intern(name: &str) -> Symbol {
        let mut t = interner()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(&id) = t.ids.get(name) {
            return Symbol(id);
        }
        let id = t.names.len() as u32;
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        t.names.push(leaked);
        t.ids.insert(leaked, id);
        Symbol(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        let t = interner()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        t.names[self.0 as usize]
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Symbols read better as their names.
        fmt::Display::fmt(self, f)
    }
}

// ---------------------------------------------------------------------------
// Term nodes and ids
// ---------------------------------------------------------------------------

/// A handle to a hash-consed term. See the module docs.
///
/// Equality, ordering and hashing are O(1) id operations; within one arena,
/// id equality coincides with structural equality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

/// The established name for solver terms; kept as an alias so call sites
/// read naturally (`Term::real_var("x")`, `t.add(u)`).
pub type Term = TermId;

/// One interned term node of sort real or bool. Children are [`TermId`]s.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// Rational constant.
    RConst(Rat),
    /// Boolean constant.
    BConst(bool),
    /// Real-sorted variable.
    RVar(Symbol),
    /// Bool-sorted variable.
    BVar(Symbol),
    /// n-ary sum.
    Add(Vec<TermId>),
    /// Binary product (linearized later; at most one side may be a
    /// non-constant for the atom to stay linear).
    Mul(TermId, TermId),
    /// Numeric negation.
    Neg(TermId),
    /// Division (the divisor must normalize to a nonzero constant to stay
    /// linear).
    Div(TermId, TermId),
    /// Modulo; always abstracted unless both sides are constants.
    Mod(TermId, TermId),
    /// Absolute value (desugared to `ite` during normalization).
    Abs(TermId),
    /// Numeric if-then-else.
    Ite(TermId, TermId, TermId),
    /// `a <= b`
    Le(TermId, TermId),
    /// `a < b`
    Lt(TermId, TermId),
    /// `a == b` (numeric)
    EqNum(TermId, TermId),
    /// Boolean negation.
    Not(TermId),
    /// n-ary conjunction.
    And(Vec<TermId>),
    /// n-ary disjunction.
    Or(Vec<TermId>),
    /// Implication.
    Implies(TermId, TermId),
    /// Bi-implication (also serves as boolean equality).
    Iff(TermId, TermId),
}

// ---------------------------------------------------------------------------
// Structural fingerprints
// ---------------------------------------------------------------------------

/// A 128-bit structural hash of a term.
///
/// Computed once per interned node (children are always interned first, so
/// the computation is O(node) from the children's cached fingerprints).
/// Equal structure ⇒ equal fingerprint, in *any* arena on *any* thread —
/// variable names are hashed by their string contents, not their interner
/// ids, so the value does not depend on interning order. The converse holds
/// up to 128-bit hash collisions, which the solver treats as negligible
/// (the memo-key property tests in `tests/shard_memo.rs` pin collision
/// freedom over randomized term programs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Fingerprint(pub u128);

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013B;

/// One FNV-1a-style mixing step over a full 128-bit word.
#[inline]
fn mix(h: u128, v: u128) -> u128 {
    (h ^ v).wrapping_mul(FNV128_PRIME)
}

/// Mixes a string byte-by-byte (used for variable names, once per arena —
/// interning dedups every later occurrence).
fn mix_str(mut h: u128, s: &str) -> u128 {
    h = mix(h, s.len() as u128);
    for b in s.as_bytes() {
        h = mix(h, *b as u128);
    }
    h
}

// ---------------------------------------------------------------------------
// The arena
// ---------------------------------------------------------------------------

static ARENA_GENERATIONS: AtomicU64 = AtomicU64::new(0);

/// A deduplicating term store. See the module docs for the two usage modes.
pub struct TermArena {
    generation: u64,
    nodes: Vec<TermNode>,
    /// Structural fingerprint per node, parallel to `nodes`.
    fps: Vec<u128>,
    dedup: HashMap<TermNode, TermId>,
}

impl Default for TermArena {
    fn default() -> Self {
        TermArena::new()
    }
}

impl TermArena {
    /// Creates an empty arena with a process-unique generation tag.
    pub fn new() -> TermArena {
        TermArena {
            generation: ARENA_GENERATIONS.fetch_add(1, Ordering::Relaxed),
            nodes: Vec::new(),
            fps: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// The arena's unique tag. Ids are only meaningful per-arena; any cache
    /// keyed by raw `TermId`s must qualify them with the generation. (The
    /// solver's query memo keys on [`TermArena::fingerprint`] instead,
    /// which is arena-independent by construction.)
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns a node, returning the canonical id for its structure.
    ///
    /// Child ids inside `node` must already belong to this arena (all
    /// constructors guarantee this; raw `intern` callers are responsible
    /// for it — out-of-range children panic here when the fingerprint is
    /// computed).
    pub fn intern(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let fp = self.node_fingerprint(&node);
        let id = TermId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.fps.push(fp);
        self.dedup.insert(node, id);
        id
    }

    /// The structural fingerprint of an interned term (O(1) lookup).
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different, larger arena (see
    /// [`TermArena::node`]).
    pub fn fingerprint(&self, id: TermId) -> Fingerprint {
        Fingerprint(self.fps[id.0 as usize])
    }

    /// Computes a fresh node's fingerprint from its tag, leaf data, and the
    /// cached fingerprints of its (already interned) children.
    fn node_fingerprint(&self, node: &TermNode) -> u128 {
        let child = |id: &TermId| self.fps[id.0 as usize];
        let mut h = FNV128_OFFSET;
        match node {
            TermNode::RConst(r) => {
                h = mix(h, 1);
                h = mix(h, r.numer() as u128);
                h = mix(h, r.denom() as u128);
            }
            TermNode::BConst(b) => {
                h = mix(h, 2);
                h = mix(h, *b as u128);
            }
            TermNode::RVar(v) => {
                h = mix(h, 3);
                h = mix_str(h, v.as_str());
            }
            TermNode::BVar(v) => {
                h = mix(h, 4);
                h = mix_str(h, v.as_str());
            }
            TermNode::Add(ts) => {
                h = mix(h, 5);
                h = mix(h, ts.len() as u128);
                for t in ts {
                    h = mix(h, child(t));
                }
            }
            TermNode::Mul(a, b) => {
                h = mix(h, 6);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Neg(t) => {
                h = mix(h, 7);
                h = mix(h, child(t));
            }
            TermNode::Div(a, b) => {
                h = mix(h, 8);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Mod(a, b) => {
                h = mix(h, 9);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Abs(t) => {
                h = mix(h, 10);
                h = mix(h, child(t));
            }
            TermNode::Ite(c, a, b) => {
                h = mix(h, 11);
                h = mix(h, child(c));
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Le(a, b) => {
                h = mix(h, 12);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Lt(a, b) => {
                h = mix(h, 13);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::EqNum(a, b) => {
                h = mix(h, 14);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Not(t) => {
                h = mix(h, 15);
                h = mix(h, child(t));
            }
            TermNode::And(ts) => {
                h = mix(h, 16);
                h = mix(h, ts.len() as u128);
                for t in ts {
                    h = mix(h, child(t));
                }
            }
            TermNode::Or(ts) => {
                h = mix(h, 17);
                h = mix(h, ts.len() as u128);
                for t in ts {
                    h = mix(h, child(t));
                }
            }
            TermNode::Implies(a, b) => {
                h = mix(h, 18);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
            TermNode::Iff(a, b) => {
                h = mix(h, 19);
                h = mix(h, child(a));
                h = mix(h, child(b));
            }
        }
        h
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different arena (and is out of range
    /// there); mixing arenas is a caller bug this cannot always detect.
    pub fn node(&self, id: TermId) -> &TermNode {
        &self.nodes[id.0 as usize]
    }

    // ---- leaf constructors ----

    /// Integer constant.
    pub fn int(&mut self, n: i128) -> TermId {
        self.rat(Rat::int(n))
    }

    /// Rational constant.
    pub fn rat(&mut self, r: Rat) -> TermId {
        self.intern(TermNode::RConst(r))
    }

    /// Boolean constant.
    pub fn bool_const(&mut self, b: bool) -> TermId {
        self.intern(TermNode::BConst(b))
    }

    /// Real-sorted variable.
    pub fn real_var(&mut self, name: impl Into<Symbol>) -> TermId {
        let s = name.into();
        self.intern(TermNode::RVar(s))
    }

    /// Bool-sorted variable.
    pub fn bool_var(&mut self, name: impl Into<Symbol>) -> TermId {
        let s = name.into();
        self.intern(TermNode::BVar(s))
    }

    // ---- numeric smart constructors ----

    /// `a + b` with constant folding and flattening.
    pub fn add(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::RConst(x), TermNode::RConst(y)) => {
                let r = *x + *y;
                self.rat(r)
            }
            (TermNode::RConst(z), _) if z.is_zero() => b,
            (_, TermNode::RConst(z)) if z.is_zero() => a,
            (TermNode::Add(xs), TermNode::Add(ys)) => {
                let mut v = xs.clone();
                v.extend(ys.iter().copied());
                self.intern(TermNode::Add(v))
            }
            (TermNode::Add(xs), _) => {
                let mut v = xs.clone();
                v.push(b);
                self.intern(TermNode::Add(v))
            }
            (_, TermNode::Add(ys)) => {
                let mut v = Vec::with_capacity(ys.len() + 1);
                v.push(a);
                v.extend(ys.iter().copied());
                self.intern(TermNode::Add(v))
            }
            _ => self.intern(TermNode::Add(vec![a, b])),
        }
    }

    /// `a - b`.
    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let nb = self.neg(b);
        self.add(a, nb)
    }

    /// `-a`.
    pub fn neg(&mut self, a: TermId) -> TermId {
        match self.node(a) {
            TermNode::RConst(r) => {
                let r = -*r;
                self.rat(r)
            }
            TermNode::Neg(inner) => *inner,
            _ => self.intern(TermNode::Neg(a)),
        }
    }

    /// `a * b` with constant folding.
    pub fn mul(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::RConst(x), TermNode::RConst(y)) => {
                let r = *x * *y;
                return self.rat(r);
            }
            (TermNode::RConst(x), _) if x.is_zero() => return self.int(0),
            (_, TermNode::RConst(y)) if y.is_zero() => return self.int(0),
            (TermNode::RConst(x), _) if *x == Rat::ONE => return b,
            (_, TermNode::RConst(y)) if *y == Rat::ONE => return a,
            _ => {}
        }
        self.intern(TermNode::Mul(a, b))
    }

    /// `a / b`.
    pub fn div(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::RConst(x), TermNode::RConst(y)) if !y.is_zero() => {
                let r = *x / *y;
                return self.rat(r);
            }
            (_, TermNode::RConst(y)) if *y == Rat::ONE => return a,
            _ => {}
        }
        self.intern(TermNode::Div(a, b))
    }

    /// `a % b`.
    pub fn rem(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermNode::Mod(a, b))
    }

    /// `abs(a)`.
    pub fn abs(&mut self, a: TermId) -> TermId {
        match self.node(a) {
            TermNode::RConst(r) => {
                let r = r.abs();
                self.rat(r)
            }
            _ => self.intern(TermNode::Abs(a)),
        }
    }

    /// Numeric if-then-else with literal-guard folding; identical branches
    /// collapse by id comparison.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        match self.node(cond) {
            TermNode::BConst(true) => then,
            TermNode::BConst(false) => els,
            _ => {
                if then == els {
                    then
                } else {
                    self.intern(TermNode::Ite(cond, then, els))
                }
            }
        }
    }

    // ---- comparisons ----

    /// `a <= b`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermNode::Le(a, b))
    }

    /// `a < b`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermNode::Lt(a, b))
    }

    /// `a >= b`.
    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a > b`.
    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// Numeric equality.
    pub fn eq_num(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermNode::EqNum(a, b))
    }

    /// Numeric disequality.
    pub fn ne_num(&mut self, a: TermId, b: TermId) -> TermId {
        let eq = self.eq_num(a, b);
        self.not(eq)
    }

    // ---- boolean smart constructors ----

    /// Boolean negation with folding.
    pub fn not(&mut self, a: TermId) -> TermId {
        match self.node(a) {
            TermNode::BConst(b) => {
                let b = !*b;
                self.bool_const(b)
            }
            TermNode::Not(inner) => *inner,
            _ => self.intern(TermNode::Not(a)),
        }
    }

    /// Conjunction with folding and flattening.
    pub fn and(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::BConst(true), _) => return b,
            (_, TermNode::BConst(true)) => return a,
            (TermNode::BConst(false), _) | (_, TermNode::BConst(false)) => {
                return self.bool_const(false)
            }
            (TermNode::And(xs), TermNode::And(ys)) => {
                let mut v = xs.clone();
                v.extend(ys.iter().copied());
                return self.intern(TermNode::And(v));
            }
            (TermNode::And(xs), _) => {
                let mut v = xs.clone();
                v.push(b);
                return self.intern(TermNode::And(v));
            }
            (_, TermNode::And(ys)) => {
                let mut v = Vec::with_capacity(ys.len() + 1);
                v.push(a);
                v.extend(ys.iter().copied());
                return self.intern(TermNode::And(v));
            }
            _ => {}
        }
        self.intern(TermNode::And(vec![a, b]))
    }

    /// Disjunction with folding and flattening.
    pub fn or(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::BConst(false), _) => return b,
            (_, TermNode::BConst(false)) => return a,
            (TermNode::BConst(true), _) | (_, TermNode::BConst(true)) => {
                return self.bool_const(true)
            }
            (TermNode::Or(xs), TermNode::Or(ys)) => {
                let mut v = xs.clone();
                v.extend(ys.iter().copied());
                return self.intern(TermNode::Or(v));
            }
            (TermNode::Or(xs), _) => {
                let mut v = xs.clone();
                v.push(b);
                return self.intern(TermNode::Or(v));
            }
            (_, TermNode::Or(ys)) => {
                let mut v = Vec::with_capacity(ys.len() + 1);
                v.push(a);
                v.extend(ys.iter().copied());
                return self.intern(TermNode::Or(v));
            }
            _ => {}
        }
        self.intern(TermNode::Or(vec![a, b]))
    }

    /// Implication.
    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        match (self.node(a), self.node(b)) {
            (TermNode::BConst(true), _) => return b,
            (TermNode::BConst(false), _) => return self.bool_const(true),
            (_, TermNode::BConst(true)) => return self.bool_const(true),
            _ => {}
        }
        self.intern(TermNode::Implies(a, b))
    }

    /// Bi-implication.
    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.intern(TermNode::Iff(a, b))
    }

    /// Conjunction of a sequence of terms.
    ///
    /// Single pass (flatten one level of nested `And`s, drop `true`,
    /// short-circuit on `false`) producing the same result as folding
    /// [`TermArena::and`], without the fold's per-step vector clones or its
    /// n−1 intermediate prefix nodes.
    pub fn conj(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out: Vec<TermId> = Vec::new();
        for t in terms {
            match self.node(t) {
                TermNode::BConst(true) => {}
                TermNode::BConst(false) => return self.bool_const(false),
                TermNode::And(xs) => out.extend(xs.iter().copied()),
                _ => out.push(t),
            }
        }
        match out.len() {
            0 => self.bool_const(true),
            1 => out[0],
            _ => self.intern(TermNode::And(out)),
        }
    }

    /// Disjunction of a sequence of terms (see [`TermArena::conj`]).
    pub fn disj(&mut self, terms: impl IntoIterator<Item = TermId>) -> TermId {
        let mut out: Vec<TermId> = Vec::new();
        for t in terms {
            match self.node(t) {
                TermNode::BConst(false) => {}
                TermNode::BConst(true) => return self.bool_const(true),
                TermNode::Or(xs) => out.extend(xs.iter().copied()),
                _ => out.push(t),
            }
        }
        match out.len() {
            0 => self.bool_const(false),
            1 => out[0],
            _ => self.intern(TermNode::Or(out)),
        }
    }

    // ---- queries ----

    /// All variable symbols (both sorts) occurring in the term, in first-
    /// occurrence order.
    pub fn vars(&self, id: TermId) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(id, &mut out);
        out
    }

    fn collect_vars(&self, id: TermId, out: &mut Vec<Symbol>) {
        match self.node(id) {
            TermNode::RConst(_) | TermNode::BConst(_) => {}
            TermNode::RVar(v) | TermNode::BVar(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            TermNode::Add(ts) | TermNode::And(ts) | TermNode::Or(ts) => {
                for t in ts.clone() {
                    self.collect_vars(t, out);
                }
            }
            TermNode::Neg(t) | TermNode::Abs(t) | TermNode::Not(t) => self.collect_vars(*t, out),
            TermNode::Mul(a, b)
            | TermNode::Div(a, b)
            | TermNode::Mod(a, b)
            | TermNode::Le(a, b)
            | TermNode::Lt(a, b)
            | TermNode::EqNum(a, b)
            | TermNode::Implies(a, b)
            | TermNode::Iff(a, b) => {
                let (a, b) = (*a, *b);
                self.collect_vars(a, out);
                self.collect_vars(b, out);
            }
            TermNode::Ite(a, b, c) => {
                let (a, b, c) = (*a, *b, *c);
                self.collect_vars(a, out);
                self.collect_vars(b, out);
                self.collect_vars(c, out);
            }
        }
    }

    /// Renders a term in the s-expression form of the original tree
    /// representation.
    pub fn display(&self, id: TermId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node(id) {
            TermNode::RConst(r) => write!(f, "{r}"),
            TermNode::BConst(b) => write!(f, "{b}"),
            TermNode::RVar(v) | TermNode::BVar(v) => write!(f, "{v}"),
            TermNode::Add(ts) => self.display_nary(f, "+", ts),
            TermNode::Mul(a, b) => self.display_binary(f, "*", *a, *b),
            TermNode::Neg(t) => self.display_unary(f, "-", *t),
            TermNode::Div(a, b) => self.display_binary(f, "/", *a, *b),
            TermNode::Mod(a, b) => self.display_binary(f, "mod", *a, *b),
            TermNode::Abs(t) => self.display_unary(f, "abs", *t),
            TermNode::Ite(c, a, b) => {
                write!(f, "(ite ")?;
                self.display(*c, f)?;
                write!(f, " ")?;
                self.display(*a, f)?;
                write!(f, " ")?;
                self.display(*b, f)?;
                write!(f, ")")
            }
            TermNode::Le(a, b) => self.display_binary(f, "<=", *a, *b),
            TermNode::Lt(a, b) => self.display_binary(f, "<", *a, *b),
            TermNode::EqNum(a, b) => self.display_binary(f, "=", *a, *b),
            TermNode::Not(t) => self.display_unary(f, "not", *t),
            TermNode::And(ts) => self.display_nary(f, "and", ts),
            TermNode::Or(ts) => self.display_nary(f, "or", ts),
            TermNode::Implies(a, b) => self.display_binary(f, "=>", *a, *b),
            TermNode::Iff(a, b) => self.display_binary(f, "iff", *a, *b),
        }
    }

    fn display_unary(&self, f: &mut fmt::Formatter<'_>, op: &str, t: TermId) -> fmt::Result {
        write!(f, "({op} ")?;
        self.display(t, f)?;
        write!(f, ")")
    }

    fn display_binary(
        &self,
        f: &mut fmt::Formatter<'_>,
        op: &str,
        a: TermId,
        b: TermId,
    ) -> fmt::Result {
        write!(f, "({op} ")?;
        self.display(a, f)?;
        write!(f, " ")?;
        self.display(b, f)?;
        write!(f, ")")
    }

    fn display_nary(&self, f: &mut fmt::Formatter<'_>, op: &str, ts: &[TermId]) -> fmt::Result {
        write!(f, "({op}")?;
        for t in ts {
            write!(f, " ")?;
            self.display(*t, f)?;
        }
        write!(f, ")")
    }
}

// ---------------------------------------------------------------------------
// The per-thread arena shard and the chainable TermId API
// ---------------------------------------------------------------------------

thread_local! {
    /// This thread's arena shard. Every thread owns one; nothing is shared,
    /// so the chainable API takes no process-wide lock and per-algorithm
    /// verification scales across threads. The shard is created lazily on
    /// first use and freed when the thread exits — worker threads spawned
    /// for one corpus run do not leak arena memory into the process.
    static SHARD: RefCell<TermArena> = RefCell::new(TermArena::new());
}

/// Runs `f` with exclusive access to this thread's arena shard.
///
/// The solver uses this to borrow once per query instead of once per node.
/// **Do not** call any of the chainable [`TermId`] methods (or `Display`)
/// from inside `f` — use the `&mut TermArena` handed to `f` instead.
/// Unlike the old process-wide mutex, a violation cannot deadlock (there is
/// no lock): it fails fast with a descriptive panic, and the discipline is
/// structural — every internal path that runs under `with_shard`
/// ([`crate::solve`], [`crate::normalize`]) threads the `&mut TermArena`
/// handle explicitly, so re-entry cannot arise there by construction.
pub fn with_shard<R>(f: impl FnOnce(&mut TermArena) -> R) -> R {
    SHARD.with(|a| match a.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => panic!(
            "re-entrant arena-shard access: inside with_shard, build terms \
             through the &mut TermArena handle, not the chainable TermId API"
        ),
    })
}

/// Former name of [`with_shard`], from when the arena was a process-wide
/// mutex rather than per-thread shards.
#[deprecated(note = "arenas are per-thread shards now; use with_shard")]
pub fn with_global_arena<R>(f: impl FnOnce(&mut TermArena) -> R) -> R {
    with_shard(f)
}

macro_rules! shard_binop {
    ($($(#[$doc:meta])* $name:ident),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(self, rhs: TermId) -> TermId {
            with_shard(|a| a.$name(self, rhs))
        }
    )*};
}

// The chainable names deliberately mirror the original deep-tree `Term`
// API (`a.add(b)`, `t.not()`, …); they are not operator overloads.
#[allow(clippy::should_implement_trait)]
impl TermId {
    /// Integer constant (thread shard).
    pub fn int(n: i128) -> TermId {
        with_shard(|a| a.int(n))
    }

    /// Rational constant (thread shard).
    pub fn rat(r: Rat) -> TermId {
        with_shard(|a| a.rat(r))
    }

    /// Boolean constant (thread shard).
    pub fn bool_const(b: bool) -> TermId {
        with_shard(|a| a.bool_const(b))
    }

    /// Real-sorted variable (thread shard).
    pub fn real_var(name: impl Into<Symbol>) -> TermId {
        let s = name.into();
        with_shard(|a| a.real_var(s))
    }

    /// Bool-sorted variable (thread shard).
    pub fn bool_var(name: impl Into<Symbol>) -> TermId {
        let s = name.into();
        with_shard(|a| a.bool_var(s))
    }

    /// Numeric if-then-else (thread shard).
    pub fn ite(cond: TermId, then: TermId, els: TermId) -> TermId {
        with_shard(|a| a.ite(cond, then, els))
    }

    /// Conjunction of a sequence of terms (thread shard).
    pub fn conj(terms: impl IntoIterator<Item = TermId>) -> TermId {
        let terms: Vec<TermId> = terms.into_iter().collect();
        with_shard(|a| a.conj(terms))
    }

    /// Disjunction of a sequence of terms (thread shard).
    pub fn disj(terms: impl IntoIterator<Item = TermId>) -> TermId {
        let terms: Vec<TermId> = terms.into_iter().collect();
        with_shard(|a| a.disj(terms))
    }

    shard_binop! {
        /// `self + rhs` with constant folding and flattening.
        add,
        /// `self - rhs`.
        sub,
        /// `self * rhs` with constant folding.
        mul,
        /// `self / rhs`.
        div,
        /// `self % rhs`.
        rem,
        /// `self <= rhs`.
        le,
        /// `self < rhs`.
        lt,
        /// `self >= rhs`.
        ge,
        /// `self > rhs`.
        gt,
        /// Numeric equality.
        eq_num,
        /// Numeric disequality.
        ne_num,
        /// Conjunction with folding and flattening.
        and,
        /// Disjunction with folding and flattening.
        or,
        /// Implication.
        implies,
        /// Bi-implication.
        iff,
    }

    /// `-self`.
    pub fn neg(self) -> TermId {
        with_shard(|a| a.neg(self))
    }

    /// `abs(self)`.
    pub fn abs(self) -> TermId {
        with_shard(|a| a.abs(self))
    }

    /// Boolean negation with folding.
    pub fn not(self) -> TermId {
        with_shard(|a| a.not(self))
    }

    /// A clone of this term's node in the thread shard — the matching
    /// surface replacing pattern matching on the old deep-tree `Term`.
    pub fn view(self) -> TermNode {
        with_shard(|a| a.node(self).clone())
    }

    /// All variable names (both sorts) occurring in the term (thread
    /// shard), rendered as strings for caller convenience.
    pub fn vars(self) -> Vec<String> {
        with_shard(|a| a.vars(self))
            .into_iter()
            .map(|s| s.as_str().to_string())
            .collect()
    }

    /// All variable symbols occurring in the term (thread shard).
    pub fn var_symbols(self) -> Vec<Symbol> {
        with_shard(|a| a.vars(self))
    }
}

/// Renders against **this thread's** arena shard.
///
/// An id minted by an explicit [`TermArena`] (or on a different thread)
/// carries no provenance — if it happens to be in range of this thread's
/// shard this prints whatever unrelated node owns that slot (only
/// out-of-range ids get the `<term#N …>` marker). Code working with
/// explicit arenas must render through [`TermArena::display`] instead;
/// `Display` on a raw id is only meaningful for terms built on the current
/// thread through the chainable API.
impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        with_shard(|a| {
            if (self.0 as usize) < a.len() {
                a.display(*self, f)
            } else {
                write!(f, "<term#{} out of this thread's shard>", self.0)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors() {
        assert_eq!(Term::int(1).add(Term::int(2)), Term::int(3));
        assert_eq!(Term::int(0).add(Term::real_var("x")), Term::real_var("x"));
        assert_eq!(Term::int(3).mul(Term::int(4)), Term::int(12));
        assert_eq!(Term::int(0).mul(Term::real_var("x")), Term::int(0));
        assert_eq!(Term::int(1).mul(Term::real_var("x")), Term::real_var("x"));
        assert_eq!(Term::int(6).div(Term::int(2)), Term::int(3));
        assert_eq!(Term::int(-5).abs(), Term::int(5));
        assert_eq!(Term::int(5).neg(), Term::int(-5));
        assert_eq!(Term::real_var("x").neg().neg(), Term::real_var("x"));
    }

    #[test]
    fn boolean_folding() {
        let b = Term::bool_var("b");
        assert_eq!(Term::bool_const(true).and(b), b);
        assert_eq!(Term::bool_const(false).or(b), b);
        assert_eq!(
            Term::bool_const(false).and(Term::bool_var("b")),
            Term::bool_const(false)
        );
        assert_eq!(b.not().not(), b);
        assert_eq!(
            Term::bool_const(false).implies(Term::bool_var("b")),
            Term::bool_const(true)
        );
    }

    #[test]
    fn flattening() {
        let t = Term::real_var("x")
            .add(Term::real_var("y"))
            .add(Term::real_var("z"));
        match t.view() {
            TermNode::Add(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected flat Add, got {other:?}"),
        }
        let t = Term::bool_var("a")
            .and(Term::bool_var("b"))
            .and(Term::bool_var("c"));
        match t.view() {
            TermNode::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn vars_collects_both_sorts() {
        let t = Term::real_var("x")
            .le(Term::int(1))
            .and(Term::bool_var("p"));
        let vs = t.vars();
        assert!(vs.contains(&"x".to_string()));
        assert!(vs.contains(&"p".to_string()));
    }

    #[test]
    fn ite_folding() {
        assert_eq!(
            Term::ite(Term::bool_const(true), Term::int(1), Term::int(2)),
            Term::int(1)
        );
        assert_eq!(
            Term::ite(Term::bool_var("c"), Term::int(7), Term::int(7)),
            Term::int(7)
        );
    }

    #[test]
    fn display_smoke() {
        let t = Term::real_var("x").add(Term::int(1)).le(Term::int(0));
        assert_eq!(t.to_string(), "(<= (+ x 1) 0)");
    }

    #[test]
    fn conj_and_disj_match_the_binary_fold() {
        let atoms: Vec<TermId> = (0..5)
            .map(|k| Term::real_var(format!("cd{k}")).le(Term::int(k)))
            .collect();
        let folded = atoms
            .iter()
            .fold(Term::bool_const(true), |acc, t| acc.and(*t));
        assert_eq!(Term::conj(atoms.iter().copied()), folded);
        let folded = atoms
            .iter()
            .fold(Term::bool_const(false), |acc, t| acc.or(*t));
        assert_eq!(Term::disj(atoms.iter().copied()), folded);
        // Constants fold away / short-circuit identically.
        assert_eq!(Term::conj([]), Term::bool_const(true));
        assert_eq!(Term::conj([Term::bool_const(true), atoms[0]]), atoms[0]);
        assert_eq!(
            Term::conj([atoms[0], Term::bool_const(false), atoms[1]]),
            Term::bool_const(false)
        );
        assert_eq!(Term::disj([]), Term::bool_const(false));
        assert_eq!(Term::disj([Term::bool_const(false), atoms[1]]), atoms[1]);
        // Nested n-ary arguments flatten one level, like the fold.
        let pair = atoms[0].and(atoms[1]);
        assert_eq!(
            Term::conj([pair, atoms[2]]),
            atoms[0].and(atoms[1]).and(atoms[2])
        );
    }

    #[test]
    fn hash_consing_dedups_structural_equals() {
        // Built through different construction orders, same structure →
        // same id.
        let a = Term::real_var("x").add(Term::int(1)).le(Term::int(0));
        let b = Term::real_var("x").add(Term::int(1)).le(Term::int(0));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_arena_is_isolated() {
        let mut arena = TermArena::new();
        let x = arena.real_var("x");
        let one = arena.int(1);
        let t = arena.add(x, one);
        // Structural equality within the private arena:
        let x2 = arena.real_var("x");
        let t2 = arena.add(x2, one);
        assert_eq!(t, t2);
        // Generations differ from this thread's shard.
        let g = with_shard(|a| a.generation());
        assert_ne!(arena.generation(), g);
    }

    #[test]
    fn symbols_intern_to_stable_ids() {
        let a = Symbol::intern("some_var");
        let b = Symbol::intern("some_var");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "some_var");
        assert_ne!(Symbol::intern("other_var"), a);
    }

    /// Interning the same structure into two independent arenas — in any
    /// construction order — yields the same fingerprint; structurally
    /// different terms get different fingerprints.
    #[test]
    fn fingerprints_are_arena_independent() {
        let mut a = TermArena::new();
        let mut b = TermArena::new();

        // Arena A builds x + 1 <= 0 directly.
        let ax = a.real_var("x");
        let a1 = a.int(1);
        let asum = a.add(ax, a1);
        let a0 = a.int(0);
        let at = a.le(asum, a0);

        // Arena B interns unrelated junk first, shifting every numeric id,
        // then builds the same structure.
        let junk = b.real_var("junk");
        let j2 = b.int(42);
        let _ = b.mul(junk, j2);
        let bx = b.real_var("x");
        let b1 = b.int(1);
        let bsum = b.add(bx, b1);
        let b0 = b.int(0);
        let bt = b.le(bsum, b0);

        assert_ne!(at, bt, "ids should differ (shifted arena)");
        assert_eq!(a.fingerprint(at), b.fingerprint(bt));

        // A different bound is a different structure.
        let a2 = a.int(2);
        let at2 = a.le(asum, a2);
        assert_ne!(a.fingerprint(at), a.fingerprint(at2));
        // Different variable name, same shape.
        let by = b.real_var("y");
        let bsum_y = b.add(by, b1);
        let bt_y = b.le(bsum_y, b0);
        assert_ne!(b.fingerprint(bt), b.fingerprint(bt_y));
    }

    /// The same chainable program run on two threads (each with its own
    /// shard) produces fingerprint-identical terms.
    #[test]
    fn thread_shards_agree_on_fingerprints() {
        fn build() -> u128 {
            let t = Term::real_var("tsx")
                .add(Term::int(3))
                .le(Term::real_var("tsy").abs());
            with_shard(|a| a.fingerprint(t)).0
        }
        let here = build();
        let there = std::thread::spawn(build).join().unwrap();
        assert_eq!(here, there);
    }

    /// Chainable calls inside `with_shard` fail fast with a descriptive
    /// panic (the old process-wide mutex deadlocked here).
    #[test]
    #[should_panic(expected = "re-entrant arena-shard access")]
    fn reentrant_shard_access_panics() {
        with_shard(|_| Term::int(1));
    }
}
