//! The solver's two-sorted term language.
//!
//! Terms are built by the typing and verification crates after they have
//! already eliminated language-level features the theory does not know about
//! (list indexing is skolemized to fresh scalar symbols upstream).

use std::fmt;

use serde::{Deserialize, Serialize};
use shadowdp_num::Rat;

/// A term of sort real or bool.
///
/// Construction helpers implement the obvious smart-constructor folding so
/// verification conditions stay small.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// Rational constant.
    RConst(Rat),
    /// Boolean constant.
    BConst(bool),
    /// Real-sorted variable.
    RVar(String),
    /// Bool-sorted variable.
    BVar(String),
    /// n-ary sum.
    Add(Vec<Term>),
    /// Binary product (linearized later; at most one side may be a
    /// non-constant for the atom to stay linear).
    Mul(Box<Term>, Box<Term>),
    /// Numeric negation.
    Neg(Box<Term>),
    /// Division (the divisor must normalize to a nonzero constant to stay
    /// linear).
    Div(Box<Term>, Box<Term>),
    /// Modulo; always abstracted unless both sides are constants.
    Mod(Box<Term>, Box<Term>),
    /// Absolute value (desugared to `ite` during normalization).
    Abs(Box<Term>),
    /// Numeric if-then-else.
    Ite(Box<Term>, Box<Term>, Box<Term>),
    /// `a <= b`
    Le(Box<Term>, Box<Term>),
    /// `a < b`
    Lt(Box<Term>, Box<Term>),
    /// `a == b` (numeric)
    EqNum(Box<Term>, Box<Term>),
    /// Boolean negation.
    Not(Box<Term>),
    /// n-ary conjunction.
    And(Vec<Term>),
    /// n-ary disjunction.
    Or(Vec<Term>),
    /// Implication.
    Implies(Box<Term>, Box<Term>),
    /// Bi-implication (also serves as boolean equality).
    Iff(Box<Term>, Box<Term>),
}

impl Term {
    /// Integer constant.
    pub fn int(n: i128) -> Term {
        Term::RConst(Rat::int(n))
    }

    /// Rational constant.
    pub fn rat(r: Rat) -> Term {
        Term::RConst(r)
    }

    /// Real-sorted variable.
    pub fn real_var(name: impl Into<String>) -> Term {
        Term::RVar(name.into())
    }

    /// Bool-sorted variable.
    pub fn bool_var(name: impl Into<String>) -> Term {
        Term::BVar(name.into())
    }

    /// `self + rhs` with constant folding and flattening.
    pub fn add(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::RConst(a), Term::RConst(b)) => Term::RConst(a + b),
            (Term::RConst(z), t) | (t, Term::RConst(z)) if z.is_zero() => t,
            (Term::Add(mut xs), Term::Add(ys)) => {
                xs.extend(ys);
                Term::Add(xs)
            }
            (Term::Add(mut xs), t) => {
                xs.push(t);
                Term::Add(xs)
            }
            (t, Term::Add(mut ys)) => {
                ys.insert(0, t);
                Term::Add(ys)
            }
            (a, b) => Term::Add(vec![a, b]),
        }
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Term) -> Term {
        self.add(rhs.neg())
    }

    /// `-self`.
    pub fn neg(self) -> Term {
        match self {
            Term::RConst(r) => Term::RConst(-r),
            Term::Neg(inner) => *inner,
            t => Term::Neg(Box::new(t)),
        }
    }

    /// `self * rhs` with constant folding.
    pub fn mul(self, rhs: Term) -> Term {
        match (&self, &rhs) {
            (Term::RConst(a), Term::RConst(b)) => return Term::RConst(*a * *b),
            (Term::RConst(a), _) if a.is_zero() => return Term::int(0),
            (_, Term::RConst(b)) if b.is_zero() => return Term::int(0),
            (Term::RConst(a), _) if *a == Rat::ONE => return rhs,
            (_, Term::RConst(b)) if *b == Rat::ONE => return self,
            _ => {}
        }
        Term::Mul(Box::new(self), Box::new(rhs))
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Term) -> Term {
        match (&self, &rhs) {
            (Term::RConst(a), Term::RConst(b)) if !b.is_zero() => return Term::RConst(*a / *b),
            (_, Term::RConst(b)) if *b == Rat::ONE => return self,
            _ => {}
        }
        Term::Div(Box::new(self), Box::new(rhs))
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Term) -> Term {
        Term::Mod(Box::new(self), Box::new(rhs))
    }

    /// `abs(self)`.
    pub fn abs(self) -> Term {
        match self {
            Term::RConst(r) => Term::RConst(r.abs()),
            t => Term::Abs(Box::new(t)),
        }
    }

    /// Numeric if-then-else with literal-guard folding.
    pub fn ite(cond: Term, then: Term, els: Term) -> Term {
        match cond {
            Term::BConst(true) => then,
            Term::BConst(false) => els,
            c => {
                if then == els {
                    then
                } else {
                    Term::Ite(Box::new(c), Box::new(then), Box::new(els))
                }
            }
        }
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Term) -> Term {
        Term::Le(Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Term) -> Term {
        Term::Lt(Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Term) -> Term {
        Term::Le(Box::new(rhs), Box::new(self))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Term) -> Term {
        Term::Lt(Box::new(rhs), Box::new(self))
    }

    /// Numeric equality.
    pub fn eq_num(self, rhs: Term) -> Term {
        Term::EqNum(Box::new(self), Box::new(rhs))
    }

    /// Numeric disequality.
    pub fn ne_num(self, rhs: Term) -> Term {
        Term::EqNum(Box::new(self), Box::new(rhs)).not()
    }

    /// Boolean negation with folding.
    pub fn not(self) -> Term {
        match self {
            Term::BConst(b) => Term::BConst(!b),
            Term::Not(inner) => *inner,
            t => Term::Not(Box::new(t)),
        }
    }

    /// Conjunction with folding and flattening.
    pub fn and(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::BConst(true), t) | (t, Term::BConst(true)) => t,
            (Term::BConst(false), _) | (_, Term::BConst(false)) => Term::BConst(false),
            (Term::And(mut xs), Term::And(ys)) => {
                xs.extend(ys);
                Term::And(xs)
            }
            (Term::And(mut xs), t) => {
                xs.push(t);
                Term::And(xs)
            }
            (t, Term::And(mut ys)) => {
                ys.insert(0, t);
                Term::And(ys)
            }
            (a, b) => Term::And(vec![a, b]),
        }
    }

    /// Disjunction with folding and flattening.
    pub fn or(self, rhs: Term) -> Term {
        match (self, rhs) {
            (Term::BConst(false), t) | (t, Term::BConst(false)) => t,
            (Term::BConst(true), _) | (_, Term::BConst(true)) => Term::BConst(true),
            (Term::Or(mut xs), Term::Or(ys)) => {
                xs.extend(ys);
                Term::Or(xs)
            }
            (Term::Or(mut xs), t) => {
                xs.push(t);
                Term::Or(xs)
            }
            (t, Term::Or(mut ys)) => {
                ys.insert(0, t);
                Term::Or(ys)
            }
            (a, b) => Term::Or(vec![a, b]),
        }
    }

    /// Implication.
    pub fn implies(self, rhs: Term) -> Term {
        match (&self, &rhs) {
            (Term::BConst(true), _) => return rhs,
            (Term::BConst(false), _) => return Term::BConst(true),
            (_, Term::BConst(true)) => return Term::BConst(true),
            _ => {}
        }
        Term::Implies(Box::new(self), Box::new(rhs))
    }

    /// Bi-implication.
    pub fn iff(self, rhs: Term) -> Term {
        Term::Iff(Box::new(self), Box::new(rhs))
    }

    /// Conjunction of a sequence of terms.
    pub fn conj(terms: impl IntoIterator<Item = Term>) -> Term {
        terms
            .into_iter()
            .fold(Term::BConst(true), |acc, t| acc.and(t))
    }

    /// Disjunction of a sequence of terms.
    pub fn disj(terms: impl IntoIterator<Item = Term>) -> Term {
        terms
            .into_iter()
            .fold(Term::BConst(false), |acc, t| acc.or(t))
    }

    /// All variable names (both sorts) occurring in the term.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::RConst(_) | Term::BConst(_) => {}
            Term::RVar(v) | Term::BVar(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Add(ts) | Term::And(ts) | Term::Or(ts) => {
                for t in ts {
                    t.collect_vars(out);
                }
            }
            Term::Neg(t) | Term::Abs(t) | Term::Not(t) => t.collect_vars(out),
            Term::Mul(a, b)
            | Term::Div(a, b)
            | Term::Mod(a, b)
            | Term::Le(a, b)
            | Term::Lt(a, b)
            | Term::EqNum(a, b)
            | Term::Implies(a, b)
            | Term::Iff(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Ite(a, b, c) => {
                a.collect_vars(out);
                b.collect_vars(out);
                c.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::RConst(r) => write!(f, "{r}"),
            Term::BConst(b) => write!(f, "{b}"),
            Term::RVar(v) | Term::BVar(v) => write!(f, "{v}"),
            Term::Add(ts) => {
                write!(f, "(+")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            Term::Mul(a, b) => write!(f, "(* {a} {b})"),
            Term::Neg(t) => write!(f, "(- {t})"),
            Term::Div(a, b) => write!(f, "(/ {a} {b})"),
            Term::Mod(a, b) => write!(f, "(mod {a} {b})"),
            Term::Abs(t) => write!(f, "(abs {t})"),
            Term::Ite(c, a, b) => write!(f, "(ite {c} {a} {b})"),
            Term::Le(a, b) => write!(f, "(<= {a} {b})"),
            Term::Lt(a, b) => write!(f, "(< {a} {b})"),
            Term::EqNum(a, b) => write!(f, "(= {a} {b})"),
            Term::Not(t) => write!(f, "(not {t})"),
            Term::And(ts) => {
                write!(f, "(and")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            Term::Or(ts) => {
                write!(f, "(or")?;
                for t in ts {
                    write!(f, " {t}")?;
                }
                write!(f, ")")
            }
            Term::Implies(a, b) => write!(f, "(=> {a} {b})"),
            Term::Iff(a, b) => write!(f, "(iff {a} {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_constructors() {
        assert_eq!(Term::int(1).add(Term::int(2)), Term::int(3));
        assert_eq!(Term::int(0).add(Term::real_var("x")), Term::real_var("x"));
        assert_eq!(Term::int(3).mul(Term::int(4)), Term::int(12));
        assert_eq!(Term::int(0).mul(Term::real_var("x")), Term::int(0));
        assert_eq!(Term::int(1).mul(Term::real_var("x")), Term::real_var("x"));
        assert_eq!(Term::int(6).div(Term::int(2)), Term::int(3));
        assert_eq!(Term::int(-5).abs(), Term::int(5));
        assert_eq!(Term::int(5).neg(), Term::int(-5));
        assert_eq!(Term::real_var("x").neg().neg(), Term::real_var("x"));
    }

    #[test]
    fn boolean_folding() {
        let b = Term::bool_var("b");
        assert_eq!(Term::BConst(true).and(b.clone()), b);
        assert_eq!(Term::BConst(false).or(b.clone()), b);
        assert_eq!(
            Term::BConst(false).and(Term::bool_var("b")),
            Term::BConst(false)
        );
        assert_eq!(b.clone().not().not(), b);
        assert_eq!(
            Term::BConst(false).implies(Term::bool_var("b")),
            Term::BConst(true)
        );
    }

    #[test]
    fn flattening() {
        let t = Term::real_var("x")
            .add(Term::real_var("y"))
            .add(Term::real_var("z"));
        match t {
            Term::Add(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected flat Add, got {other:?}"),
        }
        let t = Term::bool_var("a").and(Term::bool_var("b")).and(Term::bool_var("c"));
        match t {
            Term::And(xs) => assert_eq!(xs.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn vars_collects_both_sorts() {
        let t = Term::real_var("x")
            .le(Term::int(1))
            .and(Term::bool_var("p"));
        let vs = t.vars();
        assert!(vs.contains(&"x".to_string()));
        assert!(vs.contains(&"p".to_string()));
    }

    #[test]
    fn ite_folding() {
        assert_eq!(
            Term::ite(Term::BConst(true), Term::int(1), Term::int(2)),
            Term::int(1)
        );
        assert_eq!(
            Term::ite(Term::bool_var("c"), Term::int(7), Term::int(7)),
            Term::int(7)
        );
    }

    #[test]
    fn display_smoke() {
        let t = Term::real_var("x").add(Term::int(1)).le(Term::int(0));
        assert_eq!(t.to_string(), "(<= (+ x 1) 0)");
    }
}
