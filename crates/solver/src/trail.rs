//! The reversible-operation trail backing the iterative solver core.
//!
//! The tableau search in [`crate::solve`] used to clone its whole pending
//! worklist at every disjunction and re-run Fourier–Motzkin from scratch at
//! every atom. The trail replaces both: every mutation of the search state
//! (worklist pops/pushes, boolean bindings, incremental constraint
//! saturations) is recorded as a [`TrailOp`], and a disjunction opens a
//! [`DecisionLevel`] — a mark into the op stack. Backtracking pops ops back
//! to the mark and applies each op's inverse, restoring the exact state at
//! the branch point with no cloning and no recursion.
//!
//! The trail itself is policy-free: it stores ops and level marks and hands
//! ops back in reverse order; the search engine owns the state being undone
//! (the pending worklist, bool model, constraint stack, and
//! [`crate::fm::Saturation`]) and interprets each op.

use crate::fm::SatUndo;
use crate::normalize::Formula;
use crate::term::Symbol;

/// One reversible step of the iterative tableau search.
#[derive(Debug)]
pub enum TrailOp<'f> {
    /// A formula was popped off the pending worklist; undo pushes it back.
    PopPending(&'f Formula),
    /// `n` formulas were pushed onto the pending worklist; undo truncates
    /// them off again.
    PushPending(usize),
    /// A boolean variable was bound; undo removes the binding.
    BindBool(Symbol),
    /// A constraint was pushed into the incremental saturation; undo pops
    /// the constraint stack and rolls the saturation back via the stored
    /// [`SatUndo`].
    PushConstraint(SatUndo),
}

/// A mark into the op stack, opened at a disjunction branch point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionLevel(pub usize);

/// The op stack plus its decision-level marks and lifetime counters.
#[derive(Debug, Default)]
pub struct Trail<'f> {
    ops: Vec<TrailOp<'f>>,
    levels: Vec<usize>,
    ops_total: u64,
    max_depth: u64,
}

impl<'f> Trail<'f> {
    /// An empty trail.
    pub fn new() -> Trail<'f> {
        Trail::default()
    }

    /// Records one reversible op.
    pub fn record(&mut self, op: TrailOp<'f>) {
        self.ops_total += 1;
        self.ops.push(op);
    }

    /// Opens a decision level at the current op-stack height.
    pub fn push_level(&mut self) -> DecisionLevel {
        self.levels.push(self.ops.len());
        if self.levels.len() as u64 > self.max_depth {
            self.max_depth = self.levels.len() as u64;
        }
        DecisionLevel(self.levels.len() - 1)
    }

    /// Closes the innermost decision level, returning its op-stack mark.
    /// The caller pops ops down to the mark (via [`Trail::pop_op`]) and
    /// applies their inverses.
    pub fn pop_level(&mut self) -> usize {
        self.levels.pop().expect("pop_level without an open level")
    }

    /// Number of currently open decision levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Current op-stack height (compare against a mark while unwinding).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Pops the most recent op for the caller to invert.
    pub fn pop_op(&mut self) -> Option<TrailOp<'f>> {
        self.ops.pop()
    }

    /// Total ops recorded over this trail's lifetime (monotone; survives
    /// pops).
    pub fn ops_total(&self) -> u64 {
        self.ops_total
    }

    /// Deepest decision-level nesting reached over this trail's lifetime.
    pub fn max_depth(&self) -> u64 {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_mark_op_heights() {
        let mut t = Trail::new();
        t.record(TrailOp::PushPending(1));
        let l0 = t.push_level();
        assert_eq!(l0, DecisionLevel(0));
        t.record(TrailOp::BindBool(Symbol::intern("p")));
        t.record(TrailOp::PushPending(2));
        assert_eq!(t.depth(), 1);
        let mark = t.pop_level();
        assert_eq!(mark, 1);
        assert_eq!(t.len(), 3);
        assert!(matches!(t.pop_op(), Some(TrailOp::PushPending(2))));
        assert!(matches!(t.pop_op(), Some(TrailOp::BindBool(_))));
        assert_eq!(t.len(), mark);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn counters_are_lifetime_monotone() {
        let mut t = Trail::new();
        for _ in 0..3 {
            t.push_level();
        }
        assert_eq!(t.max_depth(), 3);
        t.pop_level();
        t.pop_level();
        t.push_level();
        assert_eq!(t.max_depth(), 3, "max depth survives pops");
        t.record(TrailOp::PushPending(1));
        let _ = t.pop_op();
        t.record(TrailOp::PushPending(1));
        assert_eq!(t.ops_total(), 2, "ops_total counts records, not height");
    }

    #[test]
    #[should_panic(expected = "pop_level without an open level")]
    fn pop_without_level_panics() {
        Trail::new().pop_level();
    }
}
