//! Property-based soundness tests for the QF-LRA solver.
//!
//! Strategy: generate random linear formulas over a small variable set,
//! evaluate them directly under random assignments, and cross-check the
//! solver's verdicts:
//!
//! 1. if some sampled assignment satisfies the conjunction, the solver must
//!    answer `Sat`;
//! 2. if the solver answers `Sat` with a non-spurious model, that model must
//!    satisfy the conjunction under direct evaluation;
//! 3. `prove` must never claim validity of a goal some sampled assignment
//!    refutes.
//!
//! The direct evaluator reads terms through [`TermId::view`], exercising
//! the hash-consed representation end to end.

use std::collections::BTreeMap;

use proptest::prelude::*;
use shadowdp_num::Rat;
use shadowdp_solver::{CheckResult, Solver, Term, TermNode};

const VARS: [&str; 4] = ["a", "b", "c", "d"];

/// Direct evaluator for the generated term fragment.
fn eval_real(t: Term, m: &BTreeMap<String, Rat>) -> Rat {
    match t.view() {
        TermNode::RConst(r) => r,
        TermNode::RVar(v) => m[v.as_str()],
        TermNode::Add(ts) => ts.iter().map(|x| eval_real(*x, m)).sum(),
        TermNode::Neg(x) => -eval_real(x, m),
        TermNode::Mul(a, b) => eval_real(a, m) * eval_real(b, m),
        TermNode::Abs(x) => eval_real(x, m).abs(),
        TermNode::Ite(c, a, b) => {
            if eval_bool(c, m) {
                eval_real(a, m)
            } else {
                eval_real(b, m)
            }
        }
        other => panic!("unexpected real term {other:?}"),
    }
}

fn eval_bool(t: Term, m: &BTreeMap<String, Rat>) -> bool {
    match t.view() {
        TermNode::BConst(b) => b,
        TermNode::Le(a, b) => eval_real(a, m) <= eval_real(b, m),
        TermNode::Lt(a, b) => eval_real(a, m) < eval_real(b, m),
        TermNode::EqNum(a, b) => eval_real(a, m) == eval_real(b, m),
        TermNode::Not(x) => !eval_bool(x, m),
        TermNode::And(ts) => ts.iter().all(|x| eval_bool(*x, m)),
        TermNode::Or(ts) => ts.iter().any(|x| eval_bool(*x, m)),
        TermNode::Implies(a, b) => !eval_bool(a, m) || eval_bool(b, m),
        TermNode::Iff(a, b) => eval_bool(a, m) == eval_bool(b, m),
        other => panic!("unexpected bool term {other:?}"),
    }
}

/// Strategy for linear real terms (constants have small magnitudes).
fn real_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-8i128..=8).prop_map(Term::int),
        (0usize..VARS.len()).prop_map(|i| Term::real_var(VARS[i])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.sub(b)),
            ((-4i128..=4), inner.clone()).prop_map(|(k, t)| Term::int(k).mul(t)),
            inner.clone().prop_map(shadowdp_solver::TermId::abs),
            inner.prop_map(shadowdp_solver::TermId::neg),
        ]
    })
}

/// Strategy for boolean formulas over linear atoms.
fn bool_term() -> impl Strategy<Value = Term> {
    let atom = (real_term(), real_term(), 0u8..3).prop_map(|(a, b, k)| match k {
        0 => a.le(b),
        1 => a.lt(b),
        _ => a.eq_num(b),
    });
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            inner.prop_map(shadowdp_solver::TermId::not),
        ]
    })
}

fn assignment() -> impl Strategy<Value = BTreeMap<String, Rat>> {
    proptest::collection::vec((-6i128..=6, 1i128..=3), VARS.len()).prop_map(|vals| {
        VARS.iter()
            .zip(vals)
            .map(|(v, (n, d))| (v.to_string(), Rat::new(n, d)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// A witnessed-satisfiable conjunction must be reported Sat.
    #[test]
    fn witnessed_sat_is_found(t in bool_term(), m in assignment()) {
        if eval_bool(t, &m) {
            let solver = Solver::new();
            prop_assert!(solver.check(std::slice::from_ref(&t)).is_sat(),
                "solver said Unsat but {m:?} satisfies {t}");
        }
    }

    /// Models returned by the solver actually satisfy the input.
    #[test]
    fn models_are_genuine(t in bool_term()) {
        let solver = Solver::new();
        if let CheckResult::Sat(model) = solver.check(std::slice::from_ref(&t)) {
            prop_assert!(!model.possibly_spurious, "fragment is linear; no abstraction expected");
            // Complete the model over all vars (unconstrained default 0).
            let m: BTreeMap<String, Rat> = VARS
                .iter()
                .map(|v| (v.to_string(), model.real(v)))
                .collect();
            prop_assert!(eval_bool(t, &m), "model {m:?} does not satisfy {t}");
        }
    }

    /// `prove` never claims validity refuted by direct evaluation.
    #[test]
    fn proved_goals_hold(hyp in bool_term(), goal in bool_term(), m in assignment()) {
        let solver = Solver::new();
        if solver.prove(std::slice::from_ref(&hyp), &goal).is_proved()
            && eval_bool(hyp, &m)
        {
            prop_assert!(eval_bool(goal, &m),
                "claimed {hyp} ⊢ {goal} but {m:?} refutes it");
        }
    }

    /// Conjunction with the negated formula is always Unsat (excluded middle
    /// at the theory level).
    #[test]
    fn formula_and_negation_unsat(t in bool_term()) {
        let solver = Solver::new();
        let contradiction = [t, t.not()];
        prop_assert!(!solver.check(&contradiction).is_sat());
    }

    /// Memoized queries agree with fresh uncached queries on arbitrary
    /// formulas (the memo table is invisible apart from speed).
    #[test]
    fn memoized_and_uncached_agree(t in bool_term()) {
        let cached = Solver::new();
        let uncached = Solver::without_memo();
        let slice = std::slice::from_ref(&t);
        let first = cached.check(slice);
        let second = cached.check(slice);
        let fresh = uncached.check(slice);
        prop_assert_eq!(first.is_sat(), fresh.is_sat(), "memo changed the verdict for {}", t);
        prop_assert_eq!(second.is_sat(), fresh.is_sat(), "cache hit changed the verdict for {}", t);
    }
}
