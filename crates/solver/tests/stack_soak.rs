//! Stack-depth soak: the trail-based search is *iterative*, so a
//! disjunction chain thousands of decision levels deep solves inside a
//! deliberately tiny thread stack. The seed engine recursed once per
//! disjunct choice (cloning its pending set and constraint state into
//! every frame), so a chain like this overflowed long before reaching
//! the budget checks; the worklist loop keeps the whole search at O(1)
//! stack regardless of how deep the trail grows.
//!
//! The CI faults job also runs the deadline variant below, which trips a
//! 1 ms budget mid-chain and must unwind the deep trail cleanly instead
//! of crashing or leaking decision levels.

use std::time::Duration;

use shadowdp_solver::{Budget, Solver, Term, TermId};

/// Decision levels in the chain — two bool literals per level, so the
/// formula holds ~10k literals.
const CHAIN: usize = 5_000;

/// A deep-but-tractable chain: every level's *first* disjunct
/// contradicts one shared top-level bound, so the search opens a level,
/// saturates into the conflict, backtracks, and commits the second
/// disjunct — 5 000 times. `x >= 1 ∧ (x <= 0 ∨ q{i})` per level; the
/// single shared `x` keeps every theory step (and the final model
/// reconstruction) O(1), so the chain's cost is pure search depth.
///
/// Ordering matters: `pending` is a LIFO, so the disjunctions go in
/// first and the bound last — the search then saturates the bound
/// *before* opening any decision level, and each dead-end disjunct
/// conflicts at its own (innermost) level and flips locally. The other
/// order would make each conflict chronologically backtrack through all
/// the unrelated inner decisions — exponential in both engines, and not
/// what this soak is measuring.
fn deep_chain() -> TermId {
    let x = Term::real_var("x");
    let mut parts: Vec<TermId> = Vec::with_capacity(CHAIN + 1);
    for i in 0..CHAIN {
        let dead_end = x.le(Term::int(0));
        let escape = Term::bool_var(format!("q{i}"));
        parts.push(dead_end.or(escape));
    }
    parts.push(Term::int(1).le(x));
    Term::conj(parts)
}

/// Runs `f` in a thread with a 1 MiB stack — small enough that one
/// recursive frame per decision level would overflow within a few
/// hundred levels, generous enough for the iterative engine plus test
/// scaffolding.
fn in_small_stack<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> R {
    std::thread::Builder::new()
        .name("stack-soak".into())
        .stack_size(1 << 20)
        .spawn(f)
        .expect("spawn soak thread")
        .join()
        .expect("soak thread must not overflow its stack")
}

#[test]
fn deep_disjunction_chain_solves_in_a_one_megabyte_stack() {
    in_small_stack(|| {
        let solver = Solver::without_memo();
        let goal = deep_chain();
        let result = solver.check(std::slice::from_ref(&goal));
        assert!(result.is_sat(), "every level's second disjunct escapes");
        assert!(solver.exhausted().is_none());

        let stats = solver.stats();
        assert!(
            stats.max_trail_depth >= CHAIN as u64,
            "the chain must actually open {CHAIN} decision levels \
             (saw {})",
            stats.max_trail_depth
        );
        // Every level's dead-end disjunct re-pushes an already-saturated
        // bound's variable, so the incremental saturation reuse shows up
        // at scale, not just in unit tests.
        assert!(
            stats.saturation_reuses > 0,
            "backtracking across {CHAIN} levels must reuse saturation state: {stats:?}"
        );
    });
}

/// The 1 ms deadline variant the CI faults job runs: tripping the budget
/// thousands of levels deep must unwind the whole trail cleanly (no
/// overflow, no poisoned solver) and leave the solver able to finish the
/// same query once the budget is lifted.
#[test]
fn deadline_trip_mid_chain_unwinds_cleanly_and_recovers() {
    in_small_stack(|| {
        let solver = Solver::without_memo();
        let goal = deep_chain();

        solver.set_budget(Budget::with_deadline(Duration::from_millis(1)));
        let strangled = solver.check(std::slice::from_ref(&goal));
        if let Some(reason) = solver.exhausted() {
            // The expected path: the deadline tripped mid-chain. The
            // placeholder answer must be flagged spurious, never usable
            // as a real model.
            match &strangled {
                shadowdp_solver::CheckResult::Sat(m) => {
                    assert!(m.possibly_spurious, "exhaustion must taint the model");
                }
                shadowdp_solver::CheckResult::Unsat => {
                    panic!("exhaustion ({reason}) must not masquerade as Unsat")
                }
            }
        }

        // Deterministic exhaustion regardless of machine speed: a
        // theory-call budget far below the chain length always trips.
        solver.clear_budget();
        solver.set_budget(Budget::with_theory_calls(100));
        let strangled = solver.check(std::slice::from_ref(&goal));
        assert!(
            solver.exhausted().is_some(),
            "100 theory calls cannot cover a {CHAIN}-level chain"
        );
        match strangled {
            shadowdp_solver::CheckResult::Sat(m) => assert!(m.possibly_spurious),
            shadowdp_solver::CheckResult::Unsat => panic!("exhaustion must not claim Unsat"),
        }

        // A clean unwind leaves nothing behind: lifting the budget and
        // re-asking solves the full chain in the same solver.
        solver.clear_budget();
        let recovered = solver.check(std::slice::from_ref(&goal));
        assert!(recovered.is_sat(), "recovery after exhaustion");
        assert!(solver.exhausted().is_none());
    });
}
