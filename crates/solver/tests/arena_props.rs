//! Property tests pinning the hash-consed smart constructors to the
//! semantics of the original deep-tree `Term` representation.
//!
//! `reference` below is a faithful copy of the seed's boxed `Term` with its
//! smart-constructor folding. Random *construction programs* (raw operator
//! trees, no folding) are replayed against both representations; the
//! results must agree on their s-expression rendering and variable sets —
//! rendering is injective on term structure, so agreement means the arena
//! folds exactly like the seed did. A second suite checks the solver's
//! memo-table keying across distinct arenas.

use proptest::prelude::*;
use shadowdp_solver::{Solver, Term, TermArena};

/// The seed's boxed term representation with its original folding.
mod reference {
    use shadowdp_num::Rat;
    use std::fmt;

    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum RTerm {
        RConst(Rat),
        BConst(bool),
        RVar(String),
        BVar(String),
        Add(Vec<RTerm>),
        Mul(Box<RTerm>, Box<RTerm>),
        Neg(Box<RTerm>),
        Div(Box<RTerm>, Box<RTerm>),
        Mod(Box<RTerm>, Box<RTerm>),
        Abs(Box<RTerm>),
        Ite(Box<RTerm>, Box<RTerm>, Box<RTerm>),
        Le(Box<RTerm>, Box<RTerm>),
        Lt(Box<RTerm>, Box<RTerm>),
        EqNum(Box<RTerm>, Box<RTerm>),
        Not(Box<RTerm>),
        And(Vec<RTerm>),
        Or(Vec<RTerm>),
        Implies(Box<RTerm>, Box<RTerm>),
        Iff(Box<RTerm>, Box<RTerm>),
    }

    impl RTerm {
        pub fn int(n: i128) -> RTerm {
            RTerm::RConst(Rat::int(n))
        }

        pub fn real_var(name: &str) -> RTerm {
            RTerm::RVar(name.to_string())
        }

        pub fn bool_var(name: &str) -> RTerm {
            RTerm::BVar(name.to_string())
        }

        pub fn add(self, rhs: RTerm) -> RTerm {
            match (self, rhs) {
                (RTerm::RConst(a), RTerm::RConst(b)) => RTerm::RConst(a + b),
                (RTerm::RConst(z), t) | (t, RTerm::RConst(z)) if z.is_zero() => t,
                (RTerm::Add(mut xs), RTerm::Add(ys)) => {
                    xs.extend(ys);
                    RTerm::Add(xs)
                }
                (RTerm::Add(mut xs), t) => {
                    xs.push(t);
                    RTerm::Add(xs)
                }
                (t, RTerm::Add(mut ys)) => {
                    ys.insert(0, t);
                    RTerm::Add(ys)
                }
                (a, b) => RTerm::Add(vec![a, b]),
            }
        }

        pub fn sub(self, rhs: RTerm) -> RTerm {
            self.add(rhs.neg())
        }

        pub fn neg(self) -> RTerm {
            match self {
                RTerm::RConst(r) => RTerm::RConst(-r),
                RTerm::Neg(inner) => *inner,
                t => RTerm::Neg(Box::new(t)),
            }
        }

        pub fn mul(self, rhs: RTerm) -> RTerm {
            match (&self, &rhs) {
                (RTerm::RConst(a), RTerm::RConst(b)) => return RTerm::RConst(*a * *b),
                (RTerm::RConst(a), _) if a.is_zero() => return RTerm::int(0),
                (_, RTerm::RConst(b)) if b.is_zero() => return RTerm::int(0),
                (RTerm::RConst(a), _) if *a == Rat::ONE => return rhs,
                (_, RTerm::RConst(b)) if *b == Rat::ONE => return self,
                _ => {}
            }
            RTerm::Mul(Box::new(self), Box::new(rhs))
        }

        pub fn div(self, rhs: RTerm) -> RTerm {
            match (&self, &rhs) {
                (RTerm::RConst(a), RTerm::RConst(b)) if !b.is_zero() => {
                    return RTerm::RConst(*a / *b)
                }
                (_, RTerm::RConst(b)) if *b == Rat::ONE => return self,
                _ => {}
            }
            RTerm::Div(Box::new(self), Box::new(rhs))
        }

        pub fn rem(self, rhs: RTerm) -> RTerm {
            RTerm::Mod(Box::new(self), Box::new(rhs))
        }

        pub fn abs(self) -> RTerm {
            match self {
                RTerm::RConst(r) => RTerm::RConst(r.abs()),
                t => RTerm::Abs(Box::new(t)),
            }
        }

        pub fn ite(cond: RTerm, then: RTerm, els: RTerm) -> RTerm {
            match cond {
                RTerm::BConst(true) => then,
                RTerm::BConst(false) => els,
                c => {
                    if then == els {
                        then
                    } else {
                        RTerm::Ite(Box::new(c), Box::new(then), Box::new(els))
                    }
                }
            }
        }

        pub fn le(self, rhs: RTerm) -> RTerm {
            RTerm::Le(Box::new(self), Box::new(rhs))
        }

        pub fn lt(self, rhs: RTerm) -> RTerm {
            RTerm::Lt(Box::new(self), Box::new(rhs))
        }

        pub fn eq_num(self, rhs: RTerm) -> RTerm {
            RTerm::EqNum(Box::new(self), Box::new(rhs))
        }

        pub fn ne_num(self, rhs: RTerm) -> RTerm {
            RTerm::EqNum(Box::new(self), Box::new(rhs)).not()
        }

        pub fn not(self) -> RTerm {
            match self {
                RTerm::BConst(b) => RTerm::BConst(!b),
                RTerm::Not(inner) => *inner,
                t => RTerm::Not(Box::new(t)),
            }
        }

        pub fn and(self, rhs: RTerm) -> RTerm {
            match (self, rhs) {
                (RTerm::BConst(true), t) | (t, RTerm::BConst(true)) => t,
                (RTerm::BConst(false), _) | (_, RTerm::BConst(false)) => RTerm::BConst(false),
                (RTerm::And(mut xs), RTerm::And(ys)) => {
                    xs.extend(ys);
                    RTerm::And(xs)
                }
                (RTerm::And(mut xs), t) => {
                    xs.push(t);
                    RTerm::And(xs)
                }
                (t, RTerm::And(mut ys)) => {
                    ys.insert(0, t);
                    RTerm::And(ys)
                }
                (a, b) => RTerm::And(vec![a, b]),
            }
        }

        pub fn or(self, rhs: RTerm) -> RTerm {
            match (self, rhs) {
                (RTerm::BConst(false), t) | (t, RTerm::BConst(false)) => t,
                (RTerm::BConst(true), _) | (_, RTerm::BConst(true)) => RTerm::BConst(true),
                (RTerm::Or(mut xs), RTerm::Or(ys)) => {
                    xs.extend(ys);
                    RTerm::Or(xs)
                }
                (RTerm::Or(mut xs), t) => {
                    xs.push(t);
                    RTerm::Or(xs)
                }
                (t, RTerm::Or(mut ys)) => {
                    ys.insert(0, t);
                    RTerm::Or(ys)
                }
                (a, b) => RTerm::Or(vec![a, b]),
            }
        }

        pub fn implies(self, rhs: RTerm) -> RTerm {
            match (&self, &rhs) {
                (RTerm::BConst(true), _) => return rhs,
                (RTerm::BConst(false), _) => return RTerm::BConst(true),
                (_, RTerm::BConst(true)) => return RTerm::BConst(true),
                _ => {}
            }
            RTerm::Implies(Box::new(self), Box::new(rhs))
        }

        pub fn iff(self, rhs: RTerm) -> RTerm {
            RTerm::Iff(Box::new(self), Box::new(rhs))
        }

        pub fn vars(&self, out: &mut Vec<String>) {
            match self {
                RTerm::RConst(_) | RTerm::BConst(_) => {}
                RTerm::RVar(v) | RTerm::BVar(v) => {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                RTerm::Add(ts) | RTerm::And(ts) | RTerm::Or(ts) => {
                    for t in ts {
                        t.vars(out);
                    }
                }
                RTerm::Neg(t) | RTerm::Abs(t) | RTerm::Not(t) => t.vars(out),
                RTerm::Mul(a, b)
                | RTerm::Div(a, b)
                | RTerm::Mod(a, b)
                | RTerm::Le(a, b)
                | RTerm::Lt(a, b)
                | RTerm::EqNum(a, b)
                | RTerm::Implies(a, b)
                | RTerm::Iff(a, b) => {
                    a.vars(out);
                    b.vars(out);
                }
                RTerm::Ite(a, b, c) => {
                    a.vars(out);
                    b.vars(out);
                    c.vars(out);
                }
            }
        }
    }

    impl fmt::Display for RTerm {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RTerm::RConst(r) => write!(f, "{r}"),
                RTerm::BConst(b) => write!(f, "{b}"),
                RTerm::RVar(v) | RTerm::BVar(v) => write!(f, "{v}"),
                RTerm::Add(ts) => {
                    write!(f, "(+")?;
                    for t in ts {
                        write!(f, " {t}")?;
                    }
                    write!(f, ")")
                }
                RTerm::Mul(a, b) => write!(f, "(* {a} {b})"),
                RTerm::Neg(t) => write!(f, "(- {t})"),
                RTerm::Div(a, b) => write!(f, "(/ {a} {b})"),
                RTerm::Mod(a, b) => write!(f, "(mod {a} {b})"),
                RTerm::Abs(t) => write!(f, "(abs {t})"),
                RTerm::Ite(c, a, b) => write!(f, "(ite {c} {a} {b})"),
                RTerm::Le(a, b) => write!(f, "(<= {a} {b})"),
                RTerm::Lt(a, b) => write!(f, "(< {a} {b})"),
                RTerm::EqNum(a, b) => write!(f, "(= {a} {b})"),
                RTerm::Not(t) => write!(f, "(not {t})"),
                RTerm::And(ts) => {
                    write!(f, "(and")?;
                    for t in ts {
                        write!(f, " {t}")?;
                    }
                    write!(f, ")")
                }
                RTerm::Or(ts) => {
                    write!(f, "(or")?;
                    for t in ts {
                        write!(f, " {t}")?;
                    }
                    write!(f, ")")
                }
                RTerm::Implies(a, b) => write!(f, "(=> {a} {b})"),
                RTerm::Iff(a, b) => write!(f, "(iff {a} {b})"),
            }
        }
    }
}

use reference::RTerm;

/// A raw construction program: one node per smart-constructor call, no
/// folding — folding happens when the program is replayed.
#[derive(Clone, Debug)]
enum Prog {
    Int(i128),
    RVar(u8),
    BConst(bool),
    BVar(u8),
    Add(Box<Prog>, Box<Prog>),
    Sub(Box<Prog>, Box<Prog>),
    Neg(Box<Prog>),
    Mul(Box<Prog>, Box<Prog>),
    Div(Box<Prog>, Box<Prog>),
    Rem(Box<Prog>, Box<Prog>),
    Abs(Box<Prog>),
    Ite(Box<Prog>, Box<Prog>, Box<Prog>),
    Le(Box<Prog>, Box<Prog>),
    Lt(Box<Prog>, Box<Prog>),
    EqNum(Box<Prog>, Box<Prog>),
    NeNum(Box<Prog>, Box<Prog>),
    Not(Box<Prog>),
    And(Box<Prog>, Box<Prog>),
    Or(Box<Prog>, Box<Prog>),
    Implies(Box<Prog>, Box<Prog>),
    Iff(Box<Prog>, Box<Prog>),
}

const RVARS: [&str; 3] = ["x", "y", "z"];
const BVARS: [&str; 2] = ["p", "q"];

fn run_reference(p: &Prog) -> RTerm {
    match p {
        Prog::Int(n) => RTerm::int(*n),
        Prog::RVar(i) => RTerm::real_var(RVARS[*i as usize % RVARS.len()]),
        Prog::BConst(b) => RTerm::BConst(*b),
        Prog::BVar(i) => RTerm::bool_var(BVARS[*i as usize % BVARS.len()]),
        Prog::Add(a, b) => run_reference(a).add(run_reference(b)),
        Prog::Sub(a, b) => run_reference(a).sub(run_reference(b)),
        Prog::Neg(a) => run_reference(a).neg(),
        Prog::Mul(a, b) => run_reference(a).mul(run_reference(b)),
        Prog::Div(a, b) => run_reference(a).div(run_reference(b)),
        Prog::Rem(a, b) => run_reference(a).rem(run_reference(b)),
        Prog::Abs(a) => run_reference(a).abs(),
        Prog::Ite(c, t, e) => RTerm::ite(run_reference(c), run_reference(t), run_reference(e)),
        Prog::Le(a, b) => run_reference(a).le(run_reference(b)),
        Prog::Lt(a, b) => run_reference(a).lt(run_reference(b)),
        Prog::EqNum(a, b) => run_reference(a).eq_num(run_reference(b)),
        Prog::NeNum(a, b) => run_reference(a).ne_num(run_reference(b)),
        Prog::Not(a) => run_reference(a).not(),
        Prog::And(a, b) => run_reference(a).and(run_reference(b)),
        Prog::Or(a, b) => run_reference(a).or(run_reference(b)),
        Prog::Implies(a, b) => run_reference(a).implies(run_reference(b)),
        Prog::Iff(a, b) => run_reference(a).iff(run_reference(b)),
    }
}

fn run_arena(p: &Prog) -> Term {
    match p {
        Prog::Int(n) => Term::int(*n),
        Prog::RVar(i) => Term::real_var(RVARS[*i as usize % RVARS.len()]),
        Prog::BConst(b) => Term::bool_const(*b),
        Prog::BVar(i) => Term::bool_var(BVARS[*i as usize % BVARS.len()]),
        Prog::Add(a, b) => run_arena(a).add(run_arena(b)),
        Prog::Sub(a, b) => run_arena(a).sub(run_arena(b)),
        Prog::Neg(a) => run_arena(a).neg(),
        Prog::Mul(a, b) => run_arena(a).mul(run_arena(b)),
        Prog::Div(a, b) => run_arena(a).div(run_arena(b)),
        Prog::Rem(a, b) => run_arena(a).rem(run_arena(b)),
        Prog::Abs(a) => run_arena(a).abs(),
        Prog::Ite(c, t, e) => Term::ite(run_arena(c), run_arena(t), run_arena(e)),
        Prog::Le(a, b) => run_arena(a).le(run_arena(b)),
        Prog::Lt(a, b) => run_arena(a).lt(run_arena(b)),
        Prog::EqNum(a, b) => run_arena(a).eq_num(run_arena(b)),
        Prog::NeNum(a, b) => run_arena(a).ne_num(run_arena(b)),
        Prog::Not(a) => run_arena(a).not(),
        Prog::And(a, b) => run_arena(a).and(run_arena(b)),
        Prog::Or(a, b) => run_arena(a).or(run_arena(b)),
        Prog::Implies(a, b) => run_arena(a).implies(run_arena(b)),
        Prog::Iff(a, b) => run_arena(a).iff(run_arena(b)),
    }
}

fn bx(p: Prog) -> Box<Prog> {
    Box::new(p)
}

/// Raw numeric construction programs.
fn num_prog() -> impl Strategy<Value = Prog> {
    let leaf = prop_oneof![
        (-6i128..=6).prop_map(Prog::Int),
        (0u8..3).prop_map(Prog::RVar),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Add(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Sub(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Mul(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Div(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Rem(bx(a), bx(b))),
            inner.clone().prop_map(|a| Prog::Neg(bx(a))),
            inner.clone().prop_map(|a| Prog::Abs(bx(a))),
        ]
    })
}

/// Raw boolean construction programs (numeric comparisons at the leaves,
/// boolean connectives and numeric `ite` above them).
fn bool_prog() -> impl Strategy<Value = Prog> {
    let atom = prop_oneof![
        (num_prog(), num_prog(), 0u8..4).prop_map(|(a, b, k)| match k {
            0 => Prog::Le(bx(a), bx(b)),
            1 => Prog::Lt(bx(a), bx(b)),
            2 => Prog::EqNum(bx(a), bx(b)),
            _ => Prog::NeNum(bx(a), bx(b)),
        }),
        (0u8..2).prop_map(Prog::BVar),
        (0u8..2).prop_map(|b| Prog::BConst(b == 1)),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::And(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Or(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Implies(bx(a), bx(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Iff(bx(a), bx(b))),
            inner.clone().prop_map(|a| Prog::Not(bx(a))),
        ]
    })
}

/// `ite` mixed into numeric position, guarded by boolean programs.
fn mixed_prog() -> impl Strategy<Value = Prog> {
    (bool_prog(), num_prog(), num_prog(), num_prog())
        .prop_map(|(c, t, e, rhs)| Prog::Le(bx(Prog::Ite(bx(c), bx(t), bx(e))), bx(rhs)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Numeric smart constructors fold exactly like the seed's.
    #[test]
    fn numeric_folding_matches_reference(p in num_prog()) {
        let reference = run_reference(&p);
        let arena = run_arena(&p);
        prop_assert_eq!(reference.to_string(), arena.to_string());
        let mut ref_vars = Vec::new();
        reference.vars(&mut ref_vars);
        prop_assert_eq!(ref_vars, arena.vars());
    }

    /// Boolean smart constructors fold exactly like the seed's.
    #[test]
    fn boolean_folding_matches_reference(p in bool_prog()) {
        let reference = run_reference(&p);
        let arena = run_arena(&p);
        prop_assert_eq!(reference.to_string(), arena.to_string());
        let mut ref_vars = Vec::new();
        reference.vars(&mut ref_vars);
        prop_assert_eq!(ref_vars, arena.vars());
    }

    /// `ite` lifting/collapse in numeric position matches too.
    #[test]
    fn mixed_ite_matches_reference(p in mixed_prog()) {
        let reference = run_reference(&p);
        let arena = run_arena(&p);
        prop_assert_eq!(reference.to_string(), arena.to_string());
    }

    /// Replaying a construction program yields the same id — hash-consing
    /// is deterministic and deduplicating.
    #[test]
    fn replay_is_id_stable(p in bool_prog()) {
        prop_assert_eq!(run_arena(&p), run_arena(&p));
    }
}

// ---------------------------------------------------------------------------
// Memo-table isolation across arenas
// ---------------------------------------------------------------------------

/// The solver's memo table keys on structural fingerprints: numerically
/// identical `TermId`s from different arenas denote different formulas and
/// must never share cache entries. (Entries *do* transfer across arenas
/// when the structures match — that contract is pinned by
/// `tests/shard_memo.rs`; here the structures differ, so the ids colliding
/// numerically must not matter.)
#[test]
fn memo_table_is_arena_isolated() {
    let solver = Solver::new();

    // Arena A: ids [x, 0, (<= x 0)] — satisfiable.
    let mut a = TermArena::new();
    let ax = a.real_var("x");
    let a0 = a.int(0);
    let a_le = a.le(ax, a0);
    assert!(solver.check_in(&mut a, &[a_le]).is_sat());

    // Arena B: ids [1, 0, (<= 1 0)] — the *same numeric ids* in the same
    // positions, but the formula is unsatisfiable.
    let mut b = TermArena::new();
    let b1 = b.int(1);
    let b0 = b.int(0);
    let b_le = b.intern(shadowdp_solver::TermNode::Le(b1, b0));
    assert_eq!(a_le, b_le, "test setup: ids must collide numerically");
    assert!(
        !solver.check_in(&mut b, &[b_le]).is_sat(),
        "a cached verdict leaked across arenas"
    );
    // Neither query may have been answered from the other's entry.
    assert_eq!(solver.stats().cache_hits, 0);

    // Re-asking within each arena *does* hit.
    assert!(solver.check_in(&mut a, &[a_le]).is_sat());
    assert!(!solver.check_in(&mut b, &[b_le]).is_sat());
    assert_eq!(solver.stats().cache_hits, 2);
}

/// A fresh arena bypasses a dropped arena's entries even when ids repeat
/// numerically, because the structures (and hence fingerprints) differ.
#[test]
fn dropped_arena_entries_are_unreachable() {
    let solver = Solver::new();
    let first_le = {
        let mut a = TermArena::new();
        let x = a.real_var("v");
        let zero = a.int(0);
        let le = a.le(x, zero);
        assert!(solver.check_in(&mut a, &[le]).is_sat());
        le
    };
    // New arena, same construction order → same numeric ids, different
    // generation.
    let mut b = TermArena::new();
    let one = b.int(1);
    let zero = b.int(0);
    let le = b.intern(shadowdp_solver::TermNode::Le(one, zero));
    assert_eq!(le, first_le);
    assert!(!solver.check_in(&mut b, &[le]).is_sat());
    assert_eq!(solver.stats().cache_hits, 0);
}
