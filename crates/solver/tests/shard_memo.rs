//! The cross-arena memo-key contract behind parallel verification.
//!
//! The solver memoizes validity queries under 128-bit structural
//! fingerprints, so a memo table shared between threads answers a query one
//! thread already solved even though every thread interns into its own
//! arena shard. Two properties make that sound, and both are pinned here
//! over randomized term-construction programs:
//!
//! 1. **Transfer** — interning the same construction program into two
//!    independent arenas (or running it on two threads through the
//!    chainable shard API) yields equal fingerprints, and the second query
//!    is a memo hit.
//! 2. **No aliasing** — programs that build structurally different terms
//!    (witnessed by their injective s-expression rendering) get different
//!    fingerprints, so an entry can never answer the wrong query.

use std::sync::Arc;

use proptest::prelude::*;
use shadowdp_solver::{QueryMemo, Solver, Term, TermArena, TermId};

// ---------------------------------------------------------------------------
// Random construction programs replayed against explicit arenas
// ---------------------------------------------------------------------------

/// One smart-constructor call per node; replaying builds the term bottom-up
/// in whichever arena it is handed.
#[derive(Clone, Debug)]
enum Prog {
    Int(i128),
    RVar(u8),
    BVar(u8),
    Le(Box<Prog>, Box<Prog>),
    Lt(Box<Prog>, Box<Prog>),
    EqNum(Box<Prog>, Box<Prog>),
    Add(Box<Prog>, Box<Prog>),
    Mul(Box<Prog>, Box<Prog>),
    Neg(Box<Prog>),
    Abs(Box<Prog>),
    Not(Box<Prog>),
    And(Box<Prog>, Box<Prog>),
    Or(Box<Prog>, Box<Prog>),
    Implies(Box<Prog>, Box<Prog>),
}

const RVARS: [&str; 3] = ["smx", "smy", "smz"];
const BVARS: [&str; 2] = ["smp", "smq"];

fn replay(arena: &mut TermArena, p: &Prog) -> TermId {
    match p {
        Prog::Int(n) => arena.int(*n),
        Prog::RVar(i) => arena.real_var(RVARS[*i as usize % RVARS.len()]),
        Prog::BVar(i) => arena.bool_var(BVARS[*i as usize % BVARS.len()]),
        Prog::Le(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.le(a, b)
        }
        Prog::Lt(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.lt(a, b)
        }
        Prog::EqNum(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.eq_num(a, b)
        }
        Prog::Add(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.add(a, b)
        }
        Prog::Mul(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.mul(a, b)
        }
        Prog::Neg(a) => {
            let a = replay(arena, a);
            arena.neg(a)
        }
        Prog::Abs(a) => {
            let a = replay(arena, a);
            arena.abs(a)
        }
        Prog::Not(a) => {
            let a = replay(arena, a);
            arena.not(a)
        }
        Prog::And(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.and(a, b)
        }
        Prog::Or(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.or(a, b)
        }
        Prog::Implies(a, b) => {
            let (a, b) = (replay(arena, a), replay(arena, b));
            arena.implies(a, b)
        }
    }
}

/// Renders via the arena (ids are arena-local, so rendering must be too).
fn render(arena: &TermArena, id: TermId) -> String {
    struct D<'a>(&'a TermArena, TermId);
    impl std::fmt::Display for D<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.0.display(self.1, f)
        }
    }
    D(arena, id).to_string()
}

fn num_prog() -> impl Strategy<Value = Prog> {
    let leaf = prop_oneof![
        (-4i128..=4).prop_map(Prog::Int),
        (0u8..3).prop_map(Prog::RVar),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Prog::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Prog::Abs(Box::new(a))),
        ]
    })
}

fn bool_prog() -> impl Strategy<Value = Prog> {
    let atom = prop_oneof![
        (num_prog(), num_prog(), 0u8..3).prop_map(|(a, b, k)| match k {
            0 => Prog::Le(Box::new(a), Box::new(b)),
            1 => Prog::Lt(Box::new(a), Box::new(b)),
            _ => Prog::EqNum(Box::new(a), Box::new(b)),
        }),
        (0u8..2).prop_map(Prog::BVar),
    ];
    atom.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Prog::Implies(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Prog::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Transfer: the same program in two independent arenas — one of them
    /// pre-polluted so every numeric id shifts — fingerprints identically.
    #[test]
    fn identical_structure_fingerprints_identically(p in bool_prog()) {
        let mut a = TermArena::new();
        let mut b = TermArena::new();
        // Shift arena B's ids so any accidental id-based keying would show.
        let junk = b.real_var("shard_junk");
        let j = b.int(991);
        let _ = b.mul(junk, j);

        let ta = replay(&mut a, &p);
        let tb = replay(&mut b, &p);
        prop_assert_eq!(a.fingerprint(ta), b.fingerprint(tb));
    }

    /// No aliasing: structurally different terms (different renderings)
    /// never share a fingerprint.
    #[test]
    fn different_structure_never_collides(p in bool_prog(), q in bool_prog()) {
        let mut a = TermArena::new();
        let mut b = TermArena::new();
        let tp = replay(&mut a, &p);
        let tq = replay(&mut b, &q);
        // Rendering is injective on structure, so it decides "same term".
        if render(&a, tp) != render(&b, tq) {
            prop_assert_ne!(a.fingerprint(tp), b.fingerprint(tq));
        } else {
            prop_assert_eq!(a.fingerprint(tp), b.fingerprint(tq));
        }
    }

    /// End-to-end transfer through the solver: a query answered in one
    /// arena is a memo hit when re-asked from a different arena that built
    /// the same conjunction independently.
    #[test]
    fn memo_hits_transfer_across_arenas(p in bool_prog(), q in bool_prog()) {
        let memo = Arc::new(QueryMemo::default());
        let s1 = Solver::with_memo(memo.clone());
        let s2 = Solver::with_memo(memo);

        let mut a = TermArena::new();
        let (pa, qa) = (replay(&mut a, &p), replay(&mut a, &q));
        let first = s1.check_in(&mut a, &[pa, qa]);
        prop_assert_eq!(s1.stats().cache_hits, 0);

        let mut b = TermArena::new();
        let (pb, qb) = (replay(&mut b, &p), replay(&mut b, &q));
        let second = s2.check_in(&mut b, &[pb, qb]);
        prop_assert_eq!(s2.stats().cache_hits, 1);
        prop_assert_eq!(first, second);
    }
}

// ---------------------------------------------------------------------------
// Cross-thread transfer through the per-thread shards
// ---------------------------------------------------------------------------

/// Two threads interning the same conjunction into their own shards share
/// memo entries: the thread that asks second gets a pure cache hit, with no
/// new theory work.
#[test]
fn threads_share_memo_entries_without_sharing_arenas() {
    let memo = Arc::new(QueryMemo::default());

    fn query(solver: &Solver) -> bool {
        let x = Term::real_var("shard_memo_x");
        let y = Term::real_var("shard_memo_y");
        let hyp = x.ge(Term::int(1)).and(y.eq_num(x.add(Term::int(2))));
        solver.check(&[hyp, y.ge(Term::int(3))]).is_sat()
    }

    let (first_sat, theory_calls) = {
        let memo = memo.clone();
        std::thread::spawn(move || {
            let solver = Solver::with_memo(memo);
            let sat = query(&solver);
            let st = solver.stats();
            assert_eq!(st.cache_hits, 0, "first thread must do the real work");
            (sat, st.theory_calls)
        })
        .join()
        .unwrap()
    };
    assert!(first_sat);
    assert!(theory_calls > 0);

    let second = std::thread::spawn(move || {
        let solver = Solver::with_memo(memo);
        let sat = query(&solver);
        let st = solver.stats();
        (sat, st)
    })
    .join()
    .unwrap();
    assert!(second.0, "cached verdict must match");
    assert_eq!(second.1.cache_hits, 1, "second thread must hit the memo");
    assert_eq!(second.1.theory_calls, 0, "a hit does no theory work");
}

/// Sanity for the no-aliasing direction at the solver level: two
/// structurally different queries from different threads must not answer
/// each other.
#[test]
fn threads_never_alias_distinct_queries() {
    let memo = Arc::new(QueryMemo::default());
    let x = || Term::real_var("alias_x");

    {
        let memo = memo.clone();
        std::thread::spawn(move || {
            let solver = Solver::with_memo(memo);
            // Satisfiable: x <= 1.
            assert!(solver.check(&[x().le(Term::int(1))]).is_sat());
        })
        .join()
        .unwrap();
    }

    let solver = Solver::with_memo(memo);
    // Unsatisfiable: x <= 1 ∧ x >= 2 — shares shape fragments with the
    // cached query but is a different conjunction.
    assert!(!solver
        .check(&[x().le(Term::int(1)), x().ge(Term::int(2))])
        .is_sat());
    assert_eq!(solver.stats().cache_hits, 0);
}
