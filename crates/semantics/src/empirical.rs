//! Empirical differential-privacy testing (StatDP-style).
//!
//! The paper motivates ShadowDP partly by the prevalence of *incorrect*
//! published DP algorithms and cites counterexample-detection work
//! [Ding et al. CCS'18, Bichsel et al. CCS'18]. This module implements the
//! core of that methodology: run a mechanism many times on a pair of
//! adjacent inputs, bucket the outputs into discrete events, and estimate
//! the worst-case log-probability ratio. Correct ε-DP mechanisms stay below
//! ε (up to sampling error); the classic buggy Sparse Vector variants blow
//! past it.
//!
//! Trials are parallelized with `crossbeam` scoped threads; each worker
//! owns a deterministically-derived RNG seed so results are reproducible.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use shadowdp_syntax::Function;

use crate::interp::Interp;
use crate::value::Value;

/// Configuration for an empirical DP test.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DpTestConfig {
    /// Trials per input (total runs = 2 × trials).
    pub trials: usize,
    /// Worker threads.
    pub threads: usize,
    /// Base RNG seed; trial `i` on input `k` uses `seed ⊕ hash(k, i)`.
    pub seed: u64,
    /// Laplace smoothing added to each event count before taking ratios,
    /// so events observed on only one side do not yield infinite estimates.
    pub smoothing: f64,
}

impl Default for DpTestConfig {
    fn default() -> Self {
        DpTestConfig {
            trials: 20_000,
            threads: 4,
            seed: 0xD1FF_EE75,
            smoothing: 1.0,
        }
    }
}

/// The result of an empirical DP test.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DpEstimate {
    /// Worst observed `|ln(P1(E)/P2(E))|` over all single-output events.
    pub max_log_ratio: f64,
    /// The event achieving the maximum.
    pub worst_event: String,
    /// Number of distinct events observed.
    pub distinct_events: usize,
    /// Trials per input actually executed.
    pub trials: usize,
}

impl DpEstimate {
    /// Whether the estimate is consistent with `eps`-DP at the given
    /// slack (sampling error allowance).
    pub fn consistent_with(&self, eps: f64, slack: f64) -> bool {
        self.max_log_ratio <= eps + slack
    }
}

/// Runs the mechanism `trials` times on each of two adjacent inputs and
/// estimates the privacy loss over discrete output events.
///
/// `project` maps each output to an event key; use [`Value::event_key`] for
/// mechanisms with discrete outputs (Report Noisy Max's index, Sparse
/// Vector's boolean vector) and a bucketing projection for continuous ones.
///
/// # Panics
///
/// Panics if a trial run fails at runtime (test programs are expected to be
/// runnable); this is a testing harness, not production inference.
///
/// # Examples
///
/// ```no_run
/// use shadowdp_semantics::{estimate_privacy_loss, DpTestConfig, Value};
/// use shadowdp_syntax::parse_function;
///
/// let f = parse_function("function F(eps: num(0,0), x: num(1,1)) returns out: num(0,0) {
///     eta := lap(1 / eps) { select: aligned, align: -1 };
///     out := x + eta;
/// }").unwrap();
/// let est = estimate_privacy_loss(
///     &f,
///     &[("eps", Value::num(1.0)), ("x", Value::num(0.0))],
///     &[("eps", Value::num(1.0)), ("x", Value::num(1.0))],
///     &DpTestConfig { trials: 5_000, ..DpTestConfig::default() },
///     |v| format!("{:.0}", v.as_num().unwrap()), // unit buckets
/// );
/// assert!(est.max_log_ratio.is_finite());
/// ```
pub fn estimate_privacy_loss(
    f: &Function,
    input1: &[(&str, Value)],
    input2: &[(&str, Value)],
    config: &DpTestConfig,
    project: impl Fn(&Value) -> String + Sync,
) -> DpEstimate {
    let counts1 = Mutex::new(HashMap::<String, u64>::new());
    let counts2 = Mutex::new(HashMap::<String, u64>::new());
    let threads = config.threads.max(1);
    let per_thread = config.trials.div_ceil(threads);
    let trials = per_thread * threads;

    crossbeam::thread::scope(|scope| {
        for t in 0..threads {
            let counts1 = &counts1;
            let counts2 = &counts2;
            let project = &project;
            let seed = config.seed;
            scope.spawn(move |_| {
                let mut local1 = HashMap::<String, u64>::new();
                let mut local2 = HashMap::<String, u64>::new();
                for (which, inputs, local) in
                    [(0u64, input1, &mut local1), (1u64, input2, &mut local2)]
                {
                    let mut interp =
                        Interp::with_seed(seed ^ (which << 32) ^ (t as u64).wrapping_mul(0x9E37));
                    for _ in 0..per_thread {
                        let run = interp
                            .run(f, inputs.iter().cloned())
                            .expect("empirical test program must run");
                        *local.entry(project(&run.output)).or_insert(0) += 1;
                    }
                }
                let mut g1 = counts1.lock();
                for (k, v) in local1 {
                    *g1.entry(k).or_insert(0) += v;
                }
                drop(g1);
                let mut g2 = counts2.lock();
                for (k, v) in local2 {
                    *g2.entry(k).or_insert(0) += v;
                }
            });
        }
    })
    .expect("worker thread panicked");

    let counts1 = counts1.into_inner();
    let counts2 = counts2.into_inner();
    let mut events: Vec<&String> = counts1.keys().chain(counts2.keys()).collect();
    events.sort();
    events.dedup();
    let distinct_events = events.len();

    let total = trials as f64;
    let mut max_log_ratio = 0.0_f64;
    let mut worst_event = String::new();
    for e in events {
        let c1 = *counts1.get(e).unwrap_or(&0) as f64 + config.smoothing;
        let c2 = *counts2.get(e).unwrap_or(&0) as f64 + config.smoothing;
        let p1 = c1 / (total + config.smoothing);
        let p2 = c2 / (total + config.smoothing);
        let lr = (p1 / p2).ln().abs();
        if lr > max_log_ratio {
            max_log_ratio = lr;
            worst_event = e.clone();
        }
    }

    DpEstimate {
        max_log_ratio,
        worst_event,
        distinct_events,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdp_syntax::parse_function;

    fn config(trials: usize) -> DpTestConfig {
        DpTestConfig {
            trials,
            threads: 4,
            seed: 42,
            smoothing: 1.0,
        }
    }

    #[test]
    fn laplace_mechanism_is_consistent_with_eps() {
        // Laplace mechanism with eps = 0.5 on inputs differing by 1.
        let f = parse_function(
            "function F(eps: num(0,0), x: num(1,1)) returns out: num(0,0) {
                eta := lap(1 / eps) { select: aligned, align: -1 };
                out := x + eta;
             }",
        )
        .unwrap();
        let est = estimate_privacy_loss(
            &f,
            &[("eps", Value::num(0.5)), ("x", Value::num(0.0))],
            &[("eps", Value::num(0.5)), ("x", Value::num(1.0))],
            &config(20_000),
            |v| format!("{:.0}", v.as_num().unwrap().clamp(-8.0, 8.0)),
        );
        assert!(
            est.consistent_with(0.5, 0.35),
            "estimated loss {} should be ~<= 0.5",
            est.max_log_ratio
        );
        assert!(est.distinct_events > 3);
    }

    #[test]
    fn non_private_release_is_flagged() {
        // Releasing x directly (no noise in the released value) is not DP:
        // the outputs on adjacent inputs never overlap.
        let f = parse_function(
            "function F(eps: num(0,0), x: num(1,1)) returns out: num(0,0) {
                out := x;
             }",
        )
        .unwrap();
        let est = estimate_privacy_loss(
            &f,
            &[("eps", Value::num(0.5)), ("x", Value::num(0.0))],
            &[("eps", Value::num(0.5)), ("x", Value::num(1.0))],
            &config(2_000),
            super::super::value::Value::event_key,
        );
        assert!(
            !est.consistent_with(0.5, 0.5),
            "direct release must violate the bound, got {}",
            est.max_log_ratio
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let f = parse_function(
            "function F(eps: num(0,0), x: num(1,1)) returns out: num(0,0) {
                eta := lap(1 / eps) { select: aligned, align: -1 };
                out := x + eta;
             }",
        )
        .unwrap();
        let run = || {
            estimate_privacy_loss(
                &f,
                &[("eps", Value::num(1.0)), ("x", Value::num(0.0))],
                &[("eps", Value::num(1.0)), ("x", Value::num(1.0))],
                &config(1_000),
                |v| format!("{:.0}", v.as_num().unwrap()),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.max_log_ratio, b.max_log_ratio);
        assert_eq!(a.worst_event, b.worst_event);
    }
}
