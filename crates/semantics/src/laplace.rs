//! The Laplace distribution: sampling and density helpers.

use rand::Rng;

/// The Laplace distribution with mean zero and a positive scale.
///
/// # Examples
///
/// ```
/// use shadowdp_semantics::Laplace;
/// use rand::SeedableRng;
///
/// let lap = Laplace::new(2.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let x = lap.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with the given scale `b > 0`.
    ///
    /// Returns `None` for non-positive or non-finite scales (a ShadowDP
    /// program whose scale expression evaluates badly is a runtime error
    /// handled by the interpreter).
    pub fn new(scale: f64) -> Option<Laplace> {
        if scale.is_finite() && scale > 0.0 {
            Some(Laplace { scale })
        } else {
            None
        }
    }

    /// The scale parameter.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one sample by inverse-CDF: for `u ~ U(-1/2, 1/2)`,
    /// `x = -b · sgn(u) · ln(1 - 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen_range(-0.5..0.5);
        // 1 - 2|u| ∈ (0, 1]; guard the zero endpoint floating point could
        // round to, which would produce -inf.
        let t = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
        -self.scale * u.signum() * t.ln()
    }

    /// Natural log of the density at `x`: `-|x|/b - ln(2b)`.
    pub fn log_density(&self, x: f64) -> f64 {
        -x.abs() / self.scale - (2.0 * self.scale).ln()
    }

    /// The log of the density ratio `p(x) / p(y)`; bounded by `|x-y|/b`.
    pub fn log_density_ratio(&self, x: f64, y: f64) -> f64 {
        (y.abs() - x.abs()) / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_scales() {
        assert!(Laplace::new(0.0).is_none());
        assert!(Laplace::new(-1.0).is_none());
        assert!(Laplace::new(f64::NAN).is_none());
        assert!(Laplace::new(f64::INFINITY).is_none());
        assert!(Laplace::new(2.0).is_some());
    }

    #[test]
    fn samples_are_finite_and_centered() {
        let lap = Laplace::new(1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        let mut abs_sum = 0.0;
        for _ in 0..n {
            let x = lap.sample(&mut rng);
            assert!(x.is_finite());
            sum += x;
            abs_sum += x.abs();
        }
        let mean = sum / n as f64;
        let mean_abs = abs_sum / n as f64;
        // E[X] = 0, E[|X|] = b = 1.
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!(
            (mean_abs - 1.0).abs() < 0.05,
            "E|X| {mean_abs} too far from 1"
        );
    }

    #[test]
    fn scale_scales_spread() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let small = Laplace::new(0.5).unwrap();
        let large = Laplace::new(5.0).unwrap();
        let n = 10_000;
        let spread = |lap: &Laplace, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..n).map(|_| lap.sample(rng).abs()).sum::<f64>() / n as f64
        };
        let s = spread(&small, &mut rng);
        let l = spread(&large, &mut rng);
        assert!(l > 5.0 * s / 2.0, "spreads: small {s}, large {l}");
    }

    #[test]
    fn density_ratio_bound() {
        // p(x)/p(x+c) <= exp(|c|/b): the randomness-alignment cost bound.
        let lap = Laplace::new(2.0).unwrap();
        for x in [-3.0, -0.5, 0.0, 1.0, 7.0] {
            for c in [-2.0, -1.0, 0.5, 2.0] {
                let lr = lap.log_density(x) - lap.log_density(x + c);
                assert!(
                    lr <= c.abs() / 2.0 + 1e-12,
                    "log ratio {lr} exceeds bound {} at x={x}, c={c}",
                    c.abs() / 2.0
                );
                assert!(
                    (lap.log_density_ratio(x, x + c) - lr).abs() < 1e-12,
                    "log_density_ratio disagrees with densities"
                );
            }
        }
    }
}
