//! Big-step interpreter for ShadowDP commands (paper Appendix A, Fig. 7).
//!
//! The interpreter executes both *source* programs and the type system's
//! *transformed* programs (which add `assert`s and distance bookkeeping over
//! hat variables) — the latter is what the Lemma 1 (consistency)
//! differential tests exercise. The target language's `havoc` is not
//! executable and reports an error.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use shadowdp_num::Rat;
use shadowdp_syntax::{BinOp, Cmd, CmdKind, Expr, Function, Name, RandExpr, UnOp};

use crate::laplace::Laplace;
use crate::memory::Memory;
use crate::value::Value;

/// Default iteration budget across all loops in one run.
pub const DEFAULT_FUEL: u64 = 1_000_000;

/// A runtime failure.
#[derive(Clone, Debug, PartialEq)]
pub enum InterpError {
    /// Read of a variable with no binding.
    UnboundVariable(Name),
    /// Operand had the wrong runtime type.
    TypeMismatch(&'static str),
    /// Division (or modulo) by zero.
    DivisionByZero,
    /// List index out of bounds.
    IndexOutOfBounds { index: f64, len: usize },
    /// Non-positive or non-finite Laplace scale.
    BadScale(f64),
    /// The loop fuel budget was exhausted (non-termination guard).
    FuelExhausted,
    /// An `assert` in a transformed program failed.
    AssertionFailed(String),
    /// `havoc` reached at runtime (target programs are not executable).
    HavocNotExecutable,
    /// Noise replay vector ran out of samples.
    NoiseExhausted,
    /// A function parameter was not supplied.
    MissingInput(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnboundVariable(n) => write!(f, "unbound variable `{n}`"),
            InterpError::TypeMismatch(what) => write!(f, "type mismatch: expected {what}"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for list of length {len}")
            }
            InterpError::BadScale(s) => write!(f, "invalid Laplace scale {s}"),
            InterpError::FuelExhausted => write!(f, "loop fuel exhausted"),
            InterpError::AssertionFailed(e) => write!(f, "assertion failed: {e}"),
            InterpError::HavocNotExecutable => write!(f, "havoc is not executable"),
            InterpError::NoiseExhausted => write!(f, "replay noise vector exhausted"),
            InterpError::MissingInput(p) => write!(f, "missing input for parameter `{p}`"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The outcome of a successful run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Value of the `return` expression.
    pub output: Value,
    /// Final memory (useful for inspecting hat variables of transformed
    /// programs).
    pub memory: Memory,
    /// The Laplace samples drawn, in order.
    pub noise: Vec<f64>,
}

/// Noise source: fresh sampling or replay of a recorded vector.
enum NoiseSource {
    Fresh(StdRng),
    Replay { samples: Vec<f64>, next: usize },
}

/// The interpreter. Owns its RNG so runs are reproducible from a seed.
///
/// # Examples
///
/// See the crate-level docs.
pub struct Interp {
    rng: StdRng,
    /// Iteration budget shared by all loops in a run.
    pub fuel: u64,
}

impl Interp {
    /// Creates an interpreter seeded from OS entropy.
    pub fn new() -> Interp {
        Interp {
            rng: StdRng::from_entropy(),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Creates a deterministic interpreter from a seed.
    pub fn with_seed(seed: u64) -> Interp {
        Interp {
            rng: StdRng::seed_from_u64(seed),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Runs `f` with the given inputs, sampling fresh noise.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] on missing inputs or runtime failures.
    pub fn run<'a>(
        &mut self,
        f: &Function,
        inputs: impl IntoIterator<Item = (&'a str, Value)>,
    ) -> Result<RunResult, InterpError> {
        let rng = StdRng::seed_from_u64(self.rng_next());
        self.exec(f, inputs, NoiseSource::Fresh(rng))
    }

    /// Runs `f` with the given inputs, replaying `noise` for sampling
    /// commands in order. Used to evaluate randomness alignments: run on
    /// the adjacent input with the aligned noise and compare outputs.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::NoiseExhausted`] if the program samples more
    /// times than `noise` provides, plus the usual runtime failures.
    pub fn run_with_noise<'a>(
        &mut self,
        f: &Function,
        inputs: impl IntoIterator<Item = (&'a str, Value)>,
        noise: &[f64],
    ) -> Result<RunResult, InterpError> {
        self.exec(
            f,
            inputs,
            NoiseSource::Replay {
                samples: noise.to_vec(),
                next: 0,
            },
        )
    }

    /// Runs `f` from a fully prepared memory (which may bind hat variables
    /// like `^q` — needed to execute *transformed* programs, whose distance
    /// bookkeeping reads them), replaying `noise` if provided.
    ///
    /// # Errors
    ///
    /// As for [`Interp::run_with_noise`]; missing parameters are reported.
    pub fn run_with_memory(
        &mut self,
        f: &Function,
        memory: Memory,
        noise: Option<&[f64]>,
    ) -> Result<RunResult, InterpError> {
        for p in &f.params {
            if !memory.contains(&Name::plain(&p.name)) {
                return Err(InterpError::MissingInput(p.name.clone()));
            }
        }
        let source = match noise {
            Some(ns) => NoiseSource::Replay {
                samples: ns.to_vec(),
                next: 0,
            },
            None => NoiseSource::Fresh(StdRng::seed_from_u64(self.rng_next())),
        };
        let mut st = State {
            memory,
            noise: source,
            trace: Vec::new(),
            fuel: self.fuel,
            output: None,
        };
        st.run_cmds(&f.body)?;
        let output = match st.output {
            Some(v) => v,
            None => st
                .memory
                .get(&Name::plain(&f.ret.name))
                .cloned()
                .ok_or_else(|| InterpError::UnboundVariable(Name::plain(&f.ret.name)))?,
        };
        Ok(RunResult {
            output,
            memory: st.memory,
            noise: st.trace,
        })
    }

    fn rng_next(&mut self) -> u64 {
        use rand::RngCore;
        self.rng.next_u64()
    }

    fn exec<'a>(
        &mut self,
        f: &Function,
        inputs: impl IntoIterator<Item = (&'a str, Value)>,
        noise: NoiseSource,
    ) -> Result<RunResult, InterpError> {
        let memory = Memory::from_inputs(inputs);
        for p in &f.params {
            if !memory.contains(&Name::plain(&p.name)) {
                return Err(InterpError::MissingInput(p.name.clone()));
            }
        }
        let mut st = State {
            memory,
            noise,
            trace: Vec::new(),
            fuel: self.fuel,
            output: None,
        };
        st.run_cmds(&f.body)?;
        let output = match st.output {
            Some(v) => v,
            // Programs elaborated by the parser always end in `return`; a
            // hand-built AST without one returns the declared variable.
            None => st
                .memory
                .get(&Name::plain(&f.ret.name))
                .cloned()
                .ok_or_else(|| InterpError::UnboundVariable(Name::plain(&f.ret.name)))?,
        };
        Ok(RunResult {
            output,
            memory: st.memory,
            noise: st.trace,
        })
    }
}

impl Default for Interp {
    fn default() -> Self {
        Interp::new()
    }
}

struct State {
    memory: Memory,
    noise: NoiseSource,
    trace: Vec<f64>,
    fuel: u64,
    output: Option<Value>,
}

impl State {
    fn run_cmds(&mut self, cmds: &[Cmd]) -> Result<(), InterpError> {
        for c in cmds {
            if self.output.is_some() {
                break; // return already executed
            }
            self.run_cmd(c)?;
        }
        Ok(())
    }

    fn run_cmd(&mut self, c: &Cmd) -> Result<(), InterpError> {
        match &c.kind {
            CmdKind::Skip => Ok(()),
            CmdKind::Assign(name, e) => {
                let v = self.eval(e)?;
                self.memory.set(name.clone(), v);
                Ok(())
            }
            CmdKind::Sample { var, dist, .. } => {
                let RandExpr::Lap(scale_e) = dist;
                let scale = self.eval_num(scale_e)?;
                let sample = match &mut self.noise {
                    NoiseSource::Fresh(rng) => {
                        let lap = Laplace::new(scale).ok_or(InterpError::BadScale(scale))?;
                        lap.sample(rng)
                    }
                    NoiseSource::Replay { samples, next } => {
                        // Scale validity still checked so replay runs reject
                        // the same programs fresh runs do.
                        Laplace::new(scale).ok_or(InterpError::BadScale(scale))?;
                        let s = samples
                            .get(*next)
                            .copied()
                            .ok_or(InterpError::NoiseExhausted)?;
                        *next += 1;
                        s
                    }
                };
                self.trace.push(sample);
                self.memory.set(var.clone(), Value::Num(sample));
                Ok(())
            }
            CmdKind::If(cond, then_b, else_b) => {
                if self.eval_bool(cond)? {
                    self.run_cmds(then_b)
                } else {
                    self.run_cmds(else_b)
                }
            }
            CmdKind::While { cond, body, .. } => {
                while self.eval_bool(cond)? {
                    if self.fuel == 0 {
                        return Err(InterpError::FuelExhausted);
                    }
                    self.fuel -= 1;
                    self.run_cmds(body)?;
                    if self.output.is_some() {
                        break;
                    }
                }
                Ok(())
            }
            CmdKind::Return(e) => {
                let v = self.eval(e)?;
                self.output = Some(v);
                Ok(())
            }
            CmdKind::Assert(e) => {
                if self.eval_bool(e)? {
                    Ok(())
                } else {
                    Err(InterpError::AssertionFailed(shadowdp_syntax::pretty_expr(
                        e,
                    )))
                }
            }
            // `assume` at runtime is a no-op when satisfied; executing a
            // violated assumption means the run is outside the verified
            // envelope, which we surface like a failed assertion.
            CmdKind::Assume(e) => {
                if self.eval_bool(e)? {
                    Ok(())
                } else {
                    Err(InterpError::AssertionFailed(format!(
                        "assume {}",
                        shadowdp_syntax::pretty_expr(e)
                    )))
                }
            }
            CmdKind::Havoc(_) => Err(InterpError::HavocNotExecutable),
        }
    }

    fn eval(&self, e: &Expr) -> Result<Value, InterpError> {
        match e {
            Expr::Num(r) => Ok(Value::Num(rat_to_f64(*r))),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Nil => Ok(Value::List(Vec::new())),
            Expr::Var(n) => self
                .memory
                .get(n)
                .cloned()
                .ok_or_else(|| InterpError::UnboundVariable(n.clone())),
            Expr::Unary(op, inner) => {
                let v = self.eval(inner)?;
                match op {
                    UnOp::Neg => Ok(Value::Num(
                        -v.as_num().ok_or(InterpError::TypeMismatch("number"))?,
                    )),
                    UnOp::Not => Ok(Value::Bool(
                        !v.as_bool().ok_or(InterpError::TypeMismatch("boolean"))?,
                    )),
                    UnOp::Abs => Ok(Value::Num(
                        v.as_num().ok_or(InterpError::TypeMismatch("number"))?.abs(),
                    )),
                    UnOp::Sgn => Ok(Value::Num(
                        v.as_num()
                            .ok_or(InterpError::TypeMismatch("number"))?
                            .signum_zero(),
                    )),
                }
            }
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b),
            Expr::Ternary(c, t, f) => {
                if self.eval_bool(c)? {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Cons(head, tail) => {
                let h = self.eval(head)?;
                let t = self.eval(tail)?;
                match t {
                    Value::List(mut xs) => {
                        // Paper `e1 :: e2` appends at the front.
                        xs.insert(0, h);
                        Ok(Value::List(xs))
                    }
                    _ => Err(InterpError::TypeMismatch("list")),
                }
            }
            Expr::Index(base, idx) => {
                let list = self.eval(base)?;
                let i = self.eval_num(idx)?;
                let xs = list.as_list().ok_or(InterpError::TypeMismatch("list"))?;
                if i < 0.0 || i.fract() != 0.0 || (i as usize) >= xs.len() {
                    return Err(InterpError::IndexOutOfBounds {
                        index: i,
                        len: xs.len(),
                    });
                }
                Ok(xs[i as usize].clone())
            }
        }
    }

    fn eval_binary(&self, op: BinOp, a: &Expr, b: &Expr) -> Result<Value, InterpError> {
        match op {
            BinOp::And => {
                // Short-circuit (matches every mainstream semantics and
                // avoids spurious errors from the unevaluated side).
                if !self.eval_bool(a)? {
                    return Ok(Value::Bool(false));
                }
                Ok(Value::Bool(self.eval_bool(b)?))
            }
            BinOp::Or => {
                if self.eval_bool(a)? {
                    return Ok(Value::Bool(true));
                }
                Ok(Value::Bool(self.eval_bool(b)?))
            }
            _ => {
                let x = self.eval_num(a)?;
                let y = self.eval_num(b)?;
                Ok(match op {
                    BinOp::Add => Value::Num(x + y),
                    BinOp::Sub => Value::Num(x - y),
                    BinOp::Mul => Value::Num(x * y),
                    BinOp::Div => {
                        if y == 0.0 {
                            return Err(InterpError::DivisionByZero);
                        }
                        Value::Num(x / y)
                    }
                    BinOp::Mod => {
                        if y == 0.0 {
                            return Err(InterpError::DivisionByZero);
                        }
                        Value::Num(x.rem_euclid(y))
                    }
                    BinOp::Lt => Value::Bool(x < y),
                    BinOp::Le => Value::Bool(x <= y),
                    BinOp::Gt => Value::Bool(x > y),
                    BinOp::Ge => Value::Bool(x >= y),
                    BinOp::Eq => Value::Bool(x == y),
                    BinOp::Ne => Value::Bool(x != y),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                })
            }
        }
    }

    fn eval_num(&self, e: &Expr) -> Result<f64, InterpError> {
        self.eval(e)?
            .as_num()
            .ok_or(InterpError::TypeMismatch("number"))
    }

    fn eval_bool(&self, e: &Expr) -> Result<bool, InterpError> {
        self.eval(e)?
            .as_bool()
            .ok_or(InterpError::TypeMismatch("boolean"))
    }
}

fn rat_to_f64(r: Rat) -> f64 {
    r.to_f64()
}

/// `signum` that maps `0.0` to `0.0` (f64::signum maps it to 1.0).
trait SignumZero {
    fn signum_zero(self) -> f64;
}

impl SignumZero for f64 {
    fn signum_zero(self) -> f64 {
        if self == 0.0 {
            0.0
        } else {
            self.signum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shadowdp_syntax::parse_function;

    fn run_src(src: &str, inputs: &[(&str, Value)]) -> Result<RunResult, InterpError> {
        let f = parse_function(src).expect("test program parses");
        let mut interp = Interp::with_seed(99);
        interp.run(&f, inputs.iter().cloned())
    }

    #[test]
    fn arithmetic_and_lists() {
        let r = run_src(
            "function F(q: list num(0,0)) returns out: num(0,0) {
                out := q[0] + q[1] * 2 - 1;
             }",
            &[("q", Value::num_list([3.0, 4.0]))],
        )
        .unwrap();
        assert_eq!(r.output, Value::num(10.0));
    }

    #[test]
    fn cons_appends_at_front() {
        let r = run_src(
            "function F(eps: num(0,0)) returns out: list num(0,0) {
                out := nil;
                out := 1 :: out;
                out := 2 :: out;
             }",
            &[("eps", Value::num(1.0))],
        )
        .unwrap();
        assert_eq!(r.output, Value::num_list([2.0, 1.0]));
    }

    #[test]
    fn while_loop_sums() {
        let r = run_src(
            "function F(size: num(0,0), q: list num(0,0)) returns out: num(0,0) {
                out := 0; i := 0;
                while (i < size) {
                    out := out + q[i];
                    i := i + 1;
                }
             }",
            &[
                ("size", Value::num(3.0)),
                ("q", Value::num_list([1.0, 2.0, 3.0])),
            ],
        )
        .unwrap();
        assert_eq!(r.output, Value::num(6.0));
    }

    #[test]
    fn sampling_records_trace_and_replay_reproduces() {
        let src = "function F(eps: num(0,0)) returns out: num(0,0) {
            e1 := lap(1 / eps) { select: aligned, align: 0 };
            e2 := lap(2 / eps) { select: aligned, align: 0 };
            out := e1 + e2;
        }";
        let f = parse_function(src).unwrap();
        let mut interp = Interp::with_seed(5);
        let r1 = interp.run(&f, [("eps", Value::num(1.0))]).unwrap();
        assert_eq!(r1.noise.len(), 2);
        // Replay the exact same noise: identical output.
        let r2 = interp
            .run_with_noise(&f, [("eps", Value::num(1.0))], &r1.noise)
            .unwrap();
        assert_eq!(r1.output, r2.output);
        // Replay shifted noise: shifted output.
        let shifted: Vec<f64> = r1.noise.iter().map(|x| x + 1.0).collect();
        let r3 = interp
            .run_with_noise(&f, [("eps", Value::num(1.0))], &shifted)
            .unwrap();
        let diff = r3.output.as_num().unwrap() - (r1.output.as_num().unwrap() + 2.0);
        assert!(diff.abs() < 1e-9, "shifted replay off by {diff}");
    }

    #[test]
    fn noise_exhaustion_reported() {
        let src = "function F(eps: num(0,0)) returns out: num(0,0) {
            e1 := lap(1) { select: aligned, align: 0 };
            e2 := lap(1) { select: aligned, align: 0 };
            out := e1 + e2;
        }";
        let f = parse_function(src).unwrap();
        let mut interp = Interp::with_seed(5);
        let err = interp
            .run_with_noise(&f, [("eps", Value::num(1.0))], &[0.5])
            .unwrap_err();
        assert_eq!(err, InterpError::NoiseExhausted);
    }

    #[test]
    fn bad_scale_rejected() {
        let err = run_src(
            "function F(eps: num(0,0)) returns out: num(0,0) {
                e1 := lap(0 - eps) { select: aligned, align: 0 };
                out := e1;
             }",
            &[("eps", Value::num(1.0))],
        )
        .unwrap_err();
        assert!(matches!(err, InterpError::BadScale(_)));
    }

    #[test]
    fn assertion_failure_surfaces() {
        let err = run_src(
            "function F(eps: num(0,0)) returns out: num(0,0) {
                assert(eps > 1);
                out := 0;
             }",
            &[("eps", Value::num(0.5))],
        )
        .unwrap_err();
        assert!(matches!(err, InterpError::AssertionFailed(_)));
    }

    #[test]
    fn havoc_is_not_executable() {
        let err = run_src(
            "function F(eps: num(0,0)) returns out: num(0,0) {
                havoc out;
             }",
            &[("eps", Value::num(1.0))],
        )
        .unwrap_err();
        assert_eq!(err, InterpError::HavocNotExecutable);
    }

    #[test]
    fn fuel_guards_infinite_loops() {
        let f = parse_function(
            "function F(eps: num(0,0)) returns out: num(0,0) {
                out := 0;
                while (0 < 1) { out := out + 1; }
             }",
        )
        .unwrap();
        let mut interp = Interp::with_seed(1);
        interp.fuel = 10;
        let err = interp.run(&f, [("eps", Value::num(1.0))]).unwrap_err();
        assert_eq!(err, InterpError::FuelExhausted);
    }

    #[test]
    fn missing_input_reported() {
        let err = run_src(
            "function F(eps: num(0,0), x: num(0,0)) returns out: num(0,0) { out := x; }",
            &[("eps", Value::num(1.0))],
        )
        .unwrap_err();
        assert_eq!(err, InterpError::MissingInput("x".into()));
    }

    #[test]
    fn index_errors() {
        let err = run_src(
            "function F(q: list num(0,0)) returns out: num(0,0) { out := q[5]; }",
            &[("q", Value::num_list([1.0]))],
        )
        .unwrap_err();
        assert!(matches!(err, InterpError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn ternary_and_mod() {
        let r = run_src(
            "function F(x: num(0,0)) returns out: num(0,0) {
                out := x % 3 == 0 ? 100 : 7;
             }",
            &[("x", Value::num(9.0))],
        )
        .unwrap();
        assert_eq!(r.output, Value::num(100.0));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        // i == 0 || q[i-1] > 0 must not index q[-1] when i == 0.
        let r = run_src(
            "function F(q: list num(0,0)) returns out: num(0,0) {
                i := 0;
                if (i == 0 || q[i - 1] > 0) { out := 1; } else { out := 0; }
             }",
            &[("q", Value::num_list([1.0]))],
        )
        .unwrap();
        assert_eq!(r.output, Value::num(1.0));
    }

    #[test]
    fn transformed_style_program_with_hat_vars_runs() {
        let r = run_src(
            "function F(eps: num(0,0), x: num(0,0)) returns out: num(0,0) {
                ^x := 1;
                ~x := 0 - 1;
                out := x + ^x + ~x;
             }",
            &[("eps", Value::num(1.0)), ("x", Value::num(5.0))],
        )
        .unwrap();
        assert_eq!(r.output, Value::num(5.0));
        assert_eq!(
            r.memory.get(&Name::plain("x").aligned_hat()),
            Some(&Value::num(1.0))
        );
    }
}
