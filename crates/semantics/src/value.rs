//! Runtime values.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A runtime value: number, boolean, or list.
///
/// Numbers are `f64` at runtime — the sampled Laplace noise is continuous —
/// while all *static* reasoning (type checking, verification) uses exact
/// rationals. The two worlds never mix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A real number.
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// A list (paper lists grow at the front via `::`).
    List(Vec<Value>),
}

impl Value {
    /// Numeric constructor.
    pub fn num(x: f64) -> Value {
        Value::Num(x)
    }

    /// List-of-numbers constructor.
    pub fn num_list(xs: impl IntoIterator<Item = f64>) -> Value {
        Value::List(xs.into_iter().map(Value::Num).collect())
    }

    /// The number inside, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The list inside, if any.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(xs) => Some(xs),
            _ => None,
        }
    }

    /// A canonical text rendering used by the empirical tester to bucket
    /// outputs into discrete events. Numbers render with full precision;
    /// callers that need coarser events pre-project the value.
    pub fn event_key(&self) -> String {
        match self {
            Value::Num(x) => format!("{x}"),
            Value::Bool(b) => format!("{b}"),
            Value::List(xs) => {
                let parts: Vec<String> = xs.iter().map(Value::event_key).collect();
                format!("[{}]", parts.join(","))
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Num(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::num(1.5).as_num(), Some(1.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::num(1.0).as_bool(), None);
        let l = Value::num_list([1.0, 2.0]);
        assert_eq!(l.as_list().unwrap().len(), 2);
    }

    #[test]
    fn event_keys_distinguish_values() {
        assert_ne!(Value::num(1.0).event_key(), Value::num(2.0).event_key());
        assert_ne!(
            Value::List(vec![Value::Bool(true)]).event_key(),
            Value::List(vec![Value::Bool(false)]).event_key()
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::num_list([1.0, 2.0]).to_string(), "[1, 2]");
    }
}
