//! Memory states.

use std::collections::BTreeMap;
use std::fmt;

use shadowdp_syntax::Name;

use crate::value::Value;

/// A memory state `m : Vars → Values`.
///
/// Keys are [`Name`]s, so the *transformed* program's distance-tracking
/// variables (`^x`, `~x`) live alongside plain variables when executing
/// type-system output for differential testing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Memory {
    map: BTreeMap<Name, Value>,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Builds a memory from `(plain-name, value)` pairs.
    pub fn from_inputs<'a>(inputs: impl IntoIterator<Item = (&'a str, Value)>) -> Memory {
        let mut m = Memory::new();
        for (k, v) in inputs {
            m.set(Name::plain(k), v);
        }
        m
    }

    /// Reads a variable.
    pub fn get(&self, name: &Name) -> Option<&Value> {
        self.map.get(name)
    }

    /// Writes a variable.
    pub fn set(&mut self, name: Name, value: Value) {
        self.map.insert(name, value);
    }

    /// Whether the variable is bound.
    pub fn contains(&self, name: &Name) -> bool {
        self.map.contains_key(name)
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Name, &Value)> {
        self.map.iter()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memory has no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} = {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_hat_names_are_distinct() {
        let mut m = Memory::new();
        let x = Name::plain("x");
        m.set(x.clone(), Value::num(1.0));
        m.set(x.aligned_hat(), Value::num(2.0));
        m.set(x.shadow_hat(), Value::num(3.0));
        assert_eq!(m.get(&x), Some(&Value::num(1.0)));
        assert_eq!(m.get(&x.aligned_hat()), Some(&Value::num(2.0)));
        assert_eq!(m.get(&x.shadow_hat()), Some(&Value::num(3.0)));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn from_inputs() {
        let m = Memory::from_inputs([("eps", Value::num(0.5))]);
        assert!(m.contains(&Name::plain("eps")));
        assert!(!m.is_empty());
    }
}
