//! Runtime semantics for ShadowDP programs.
//!
//! The paper (Appendix A, Fig. 7) gives ShadowDP a Kozen-style
//! sub-distribution semantics. This crate realizes that semantics as a
//! sampling interpreter:
//!
//! - [`value`] — runtime values (numbers, booleans, lists);
//! - [`memory`] — memory states mapping (possibly hatted) names to values;
//! - [`interp`] — big-step evaluation of expressions and commands, with
//!   Laplace sampling, noise-trace recording, and noise replay (the latter
//!   is what lets tests *evaluate a randomness alignment*: run the program
//!   on the adjacent input with the aligned noise vector and compare
//!   outputs);
//! - [`laplace`] — the Laplace sampler and density helpers;
//! - [`empirical`] — a StatDP-style empirical differential-privacy tester
//!   (runs a mechanism many times on a pair of adjacent inputs and reports
//!   the worst observed log-probability ratio over output events), used for
//!   the paper's bug-finding motivation.
//!
//! # Examples
//!
//! ```
//! use shadowdp_semantics::{Interp, Value};
//! use shadowdp_syntax::parse_function;
//!
//! let f = parse_function(
//!     "function AddNoise(eps: num(0,0), x: num(1,1)) returns out: num(0,0) {
//!         eta := lap(1 / eps) { select: aligned, align: -1 };
//!         out := x + eta;
//!      }",
//! ).unwrap();
//! let mut interp = Interp::with_seed(7);
//! let run = interp
//!     .run(&f, [("eps", Value::num(1.0)), ("x", Value::num(10.0))])
//!     .unwrap();
//! assert_eq!(run.noise.len(), 1);
//! assert_eq!(run.output.as_num().unwrap(), 10.0 + run.noise[0]);
//! ```

pub mod empirical;
pub mod interp;
pub mod laplace;
pub mod memory;
pub mod value;

pub use empirical::{estimate_privacy_loss, DpEstimate, DpTestConfig};
pub use interp::{Interp, InterpError, RunResult};
pub use laplace::Laplace;
pub use memory::Memory;
pub use value::Value;
