//! Bounded-model-checking coverage of the *correct* corpus: with loops
//! unrolled at concrete small bounds, every assertion must hold for all
//! inputs within the bound. This cross-checks the inductive engine — a bug
//! in invariant generation cannot silently weaken the proof without BMC
//! disagreeing on the bounded slice.

use shadowdp::corpus::{self, Algorithm};
use shadowdp::Pipeline;
use shadowdp_verify::{BmcOptions, Engine, Options, Verdict};

fn bmc_pipeline(alg: &Algorithm) -> Pipeline {
    Pipeline::with_options(Options {
        engine: Engine::Bmc,
        bmc: BmcOptions {
            list_len: 3,
            max_unroll: None,
            assumptions: alg
                .bmc_assumptions
                .iter()
                .map(|s| shadowdp_syntax::parse_expr(s).unwrap())
                .collect(),
        },
        ..Options::default()
    })
}

#[track_caller]
fn bounded_ok(alg: &Algorithm) {
    let report = bmc_pipeline(alg)
        .run(alg.source)
        .unwrap_or_else(|e| panic!("{}: {e}", alg.name));
    assert!(
        matches!(report.verdict, Verdict::Proved),
        "{} (BMC, size 3): {:?}\n{:#?}",
        alg.name,
        report.verdict,
        report.verification.log
    );
}

#[test]
fn noisy_max_bounded() {
    bounded_ok(&corpus::noisy_max());
}

#[test]
fn svt_n1_bounded() {
    bounded_ok(&corpus::svt_n1());
}

#[test]
fn gap_svt_bounded() {
    bounded_ok(&corpus::gap_svt());
}

#[test]
fn partial_sum_bounded() {
    bounded_ok(&corpus::partial_sum());
}

#[test]
fn prefix_sum_bounded() {
    bounded_ok(&corpus::prefix_sum());
}

#[test]
fn smart_sum_bounded() {
    bounded_ok(&corpus::smart_sum());
}
