//! Property-based tests of the *semantic* alignment claims behind the
//! proofs:
//!
//! 1. For Report Noisy Max, the paper's §2.4 selective alignment maps any
//!    execution on `D1` to an execution on `D2` with the same output
//!    (randomized over inputs, adjacency and noise).
//! 2. For the Laplace mechanism, the alignment `η ↦ η − (x2 − x1)` equates
//!    outputs exactly.
//! 3. For Sparse Vector (N = 1), the `(◦, Ω ? 2 : 0)` alignment preserves
//!    the boolean output vector when the threshold noise is shifted by +1
//!    and above-threshold query noise by +2.

use proptest::prelude::*;
use shadowdp::corpus;
use shadowdp_semantics::{Interp, Value};
use shadowdp_syntax::parse_function;

fn adjacent_queries() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    // q1 arbitrary in [-5, 5], per-element difference in [-1, 1].
    proptest::collection::vec((-5.0f64..5.0, -1.0f64..1.0), 1..6).prop_map(|pairs| {
        let q1: Vec<f64> = pairs.iter().map(|(q, _)| *q).collect();
        let q2: Vec<f64> = pairs.iter().map(|(q, d)| q + d).collect();
        (q1, q2)
    })
}

fn noise_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-6.0f64..6.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §2.4's construction: shadow noise for everyone except the winner,
    /// winner gets +2 — output is preserved on the adjacent input.
    #[test]
    fn noisy_max_alignment_preserves_output(
        (q1, q2) in adjacent_queries(),
        noise in noise_vec(8),
    ) {
        let f = parse_function(corpus::noisy_max().source).unwrap();
        let size = q1.len() as f64;
        let mut interp = Interp::with_seed(1);

        let run1 = interp.run_with_noise(&f, [
            ("eps", Value::num(1.0)),
            ("size", Value::num(size)),
            ("q", Value::num_list(q1.clone())),
        ], &noise).unwrap();
        let winner = run1.output.as_num().unwrap() as usize;

        let aligned: Vec<f64> = noise.iter().enumerate()
            .map(|(i, a)| if i == winner { a + 2.0 } else { *a })
            .collect();
        let run2 = interp.run_with_noise(&f, [
            ("eps", Value::num(1.0)),
            ("size", Value::num(size)),
            ("q", Value::num_list(q2.clone())),
        ], &aligned).unwrap();

        // The alignment argument needs strictness margins; floating-point
        // ties are measure-zero but proptest will find them, so skip
        // near-ties.
        let noisy1: Vec<f64> = q1.iter().zip(&noise).map(|(q, n)| q + n).collect();
        let max1 = noisy1[winner];
        let margin = noisy1.iter().enumerate()
            .filter(|(i, _)| *i != winner)
            .map(|(_, v)| max1 - v)
            .fold(f64::INFINITY, f64::min);
        prop_assume!(margin > 2.0 + 1e-9);

        prop_assert_eq!(
            run1.output.clone(), run2.output.clone(),
            "winner {} on q1={:?} noise={:?} not preserved on q2={:?}",
            winner, q1, noise, q2
        );
    }

    /// The Laplace mechanism's alignment equates outputs exactly.
    #[test]
    fn laplace_alignment_is_exact(
        x1 in -5.0f64..5.0,
        d in -1.0f64..1.0,
        eta in -8.0f64..8.0,
    ) {
        let f = parse_function(corpus::laplace_mechanism().source).unwrap();
        let x2 = x1 + d;
        let mut interp = Interp::with_seed(2);
        let run1 = interp.run_with_noise(&f, [
            ("eps", Value::num(1.0)),
            ("x", Value::num(x1)),
        ], &[eta]).unwrap();
        let run2 = interp.run_with_noise(&f, [
            ("eps", Value::num(1.0)),
            ("x", Value::num(x2)),
        ], &[eta - d]).unwrap();
        let o1 = run1.output.as_num().unwrap();
        let o2 = run2.output.as_num().unwrap();
        prop_assert!((o1 - o2).abs() < 1e-9, "{o1} vs {o2}");
    }

    /// Sparse Vector (N = 1): threshold noise +1, above-threshold query
    /// noise +2 — the boolean output vector is preserved (away from ties).
    #[test]
    fn svt_alignment_preserves_output(
        (q1, q2) in adjacent_queries(),
        t in -3.0f64..3.0,
        noise in noise_vec(8),
    ) {
        let f = parse_function(corpus::svt_n1().source).unwrap();
        let size = q1.len() as f64;
        let inputs = |q: Vec<f64>| vec![
            ("eps", Value::num(1.0)),
            ("size", Value::num(size)),
            ("T", Value::num(t)),
            ("q", Value::num_list(q)),
        ];
        let mut interp = Interp::with_seed(3);
        let run1 = interp.run_with_noise(&f, inputs(q1.clone()), &noise).unwrap();

        // Tie margins: skip runs where any comparison is within the
        // alignment slack.
        let tt = t + noise[0];
        let margin = q1.iter().zip(noise.iter().skip(1))
            .map(|(q, n)| (q + n - tt).abs())
            .fold(f64::INFINITY, f64::min);
        prop_assume!(margin > 3.0 + 1e-9);

        // Alignment: eta1 + 1; above-threshold etas + 2, below unchanged.
        let mut aligned = vec![noise[0] + 1.0];
        for (q, n) in q1.iter().zip(noise.iter().skip(1)) {
            let above = q + n >= tt;
            aligned.push(if above { n + 2.0 } else { *n });
        }
        let run2 = interp.run_with_noise(&f, inputs(q2.clone()), &aligned).unwrap();
        prop_assert_eq!(
            run1.output.clone(), run2.output.clone(),
            "q1={:?} q2={:?} t={} noise={:?}", q1, q2, t, noise
        );
    }

    /// Pretty-printed corpus programs re-parse to the same AST (roundtrip
    /// over the real benchmark suite, not just random expressions).
    #[test]
    fn corpus_pretty_roundtrip(idx in 0usize..14) {
        let algs = corpus::all_algorithms();
        let alg = &algs[idx % algs.len()];
        let f = parse_function(alg.source).unwrap();
        let printed = shadowdp_syntax::pretty_function(&f);
        let f2 = parse_function(&printed).unwrap();
        prop_assert_eq!(f, f2);
    }
}
