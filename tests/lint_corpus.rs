//! Lint acceptance tests over the paper corpus and the buggy-variant
//! mini-corpus under `tests/lint/`.
//!
//! - Every Table 1 algorithm (and the Laplace mechanism) lints clean:
//!   the SD checks are tuned to the paper's idioms, so a correct,
//!   verifiable program must not trip them.
//! - The classic *incorrect* Sparse Vector variants are flagged before
//!   any verification runs, with the right code at the right place.
//! - The mini-corpus diagnostics are pinned byte-for-byte against
//!   golden `.expected` files (JSON-lines, canonical order), and the
//!   rendering is deterministic across repeated runs.
//! - The whole corpus lints in single-digit milliseconds — the lint
//!   tier must stay cheap enough to run unconditionally before
//!   verification.

use std::path::Path;
use std::time::Instant;

use shadowdp::{corpus, lint_source, render_json_lines};

/// Codes of a source's diagnostics, in canonical order.
fn codes(source: &str) -> Vec<String> {
    lint_source(source)
        .expect("corpus programs parse")
        .into_iter()
        .map(|d| format!("{}/{}", d.code.as_str(), d.severity.as_str()))
        .collect()
}

#[test]
fn table1_algorithms_lint_clean() {
    for alg in corpus::table1_algorithms() {
        assert_eq!(
            codes(alg.source),
            Vec::<String>::new(),
            "{} must lint clean",
            alg.name
        );
    }
    assert_eq!(
        codes(corpus::laplace_mechanism().source),
        Vec::<String>::new()
    );
}

/// The corpus's known-incorrect variants are flagged *pre-verification*
/// (except the no-threshold-noise variant, whose bug is a semantic
/// alignment failure only the verifier can see — the lint tier is a
/// filter, not a decision procedure).
#[test]
fn buggy_corpus_is_flagged_with_stable_codes() {
    let by_name = |name: &str| {
        let alg = corpus::buggy_algorithms()
            .into_iter()
            .find(|a| a.name == name)
            .unwrap_or_else(|| panic!("no corpus algorithm named {name}"));
        codes(alg.source)
    };
    assert_eq!(
        by_name("Buggy SVT (no threshold noise)"),
        Vec::<String>::new()
    );
    assert_eq!(
        by_name("Buggy SVT (unaligned query noise)"),
        vec!["SD03/warning"]
    );
    assert_eq!(
        by_name("Buggy SVT (unbounded answers)"),
        vec!["SD02/warning"]
    );
    assert_eq!(
        by_name("Buggy Noisy Max (non-injective alignment)"),
        vec!["SD02/warning"]
    );
}

/// Lints one mini-corpus file and compares the JSON-lines rendering
/// byte-for-byte against its golden `.expected` neighbour.
fn golden(stem: &str, expected_positions: &[(usize, usize)]) {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint");
    let source = std::fs::read_to_string(dir.join(format!("{stem}.sdp"))).expect("source file");
    let expected =
        std::fs::read_to_string(dir.join(format!("{stem}.expected"))).expect("golden file");
    let diags = lint_source(&source).expect("mini-corpus programs parse");
    assert_eq!(
        render_json_lines(&diags),
        expected,
        "{stem}: diagnostics drifted from the golden file"
    );
    // Locations pinned independently of the golden bytes, so a golden
    // regeneration cannot silently launder a broken line:col mapping.
    let positions: Vec<(usize, usize)> = diags.iter().map(|d| (d.line, d.col)).collect();
    assert_eq!(positions, expected_positions, "{stem}");
}

#[test]
fn golden_svt_unused_threshold_noise() {
    golden("svt_unused_threshold_noise", &[(8, 5)]);
}

#[test]
fn golden_partial_sum_over_budget() {
    golden("partial_sum_over_budget", &[(14, 5)]);
}

#[test]
fn golden_noisy_max_unused_noise() {
    golden("noisy_max_unused_noise", &[(9, 9), (10, 9)]);
}

/// Linting the same program twice renders byte-identical JSON — the
/// report digest contract extended to the lint tier.
#[test]
fn lint_is_deterministic_across_runs() {
    for alg in corpus::all_algorithms() {
        let a = render_json_lines(&lint_source(alg.source).expect("parses"));
        let b = render_json_lines(&lint_source(alg.source).expect("parses"));
        assert_eq!(a, b, "{}", alg.name);
    }
}

/// The lint tier is cheap: the entire corpus (nine Table 1 algorithms,
/// the Laplace mechanism, four buggy variants) lints well under the
/// 5 ms acceptance bound in release builds. Debug builds get slack —
/// the bound guards the optimized binary users run.
#[test]
fn full_corpus_lints_under_budget() {
    let algorithms = corpus::all_algorithms();
    // Warm up (first parse touches lazy metric registration).
    for alg in &algorithms {
        let _ = lint_source(alg.source);
    }
    let start = Instant::now();
    for alg in &algorithms {
        let _ = lint_source(alg.source).expect("parses");
    }
    let elapsed = start.elapsed();
    let budget_ms = if cfg!(debug_assertions) { 50 } else { 5 };
    assert!(
        elapsed.as_millis() < budget_ms,
        "linting {} algorithms took {elapsed:?} (budget {budget_ms}ms)",
        algorithms.len()
    );
}
