//! Observability acceptance tests: tracing spans account for the wall
//! clock of a cold Table 1 run, the Chrome trace export is structurally
//! sound, and the metrics registry is deterministic across identical
//! cold corpus runs.
//!
//! The span ring and the metrics registry are process-global, so the
//! tests in this binary serialize on one lock and work with snapshot
//! *deltas*, never absolutes.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

use shadowdp::{table1, Pipeline};
use shadowdp_obs::{SnapValue, SpanRecord};

/// Serializes the tests in this binary: arming spans and diffing global
/// counters cannot tolerate a concurrent sibling run.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // A panicking sibling poisons the lock but leaves the registry
    // usable (deltas still work), so recover instead of cascading.
    OBS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn span_sum_us(spans: &[SpanRecord], name: &str) -> u64 {
    spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.dur_us)
        .sum()
}

/// The acceptance criterion: a cold 18-job Table 1 run at one thread
/// produces a trace whose per-algorithm `verify` spans sum to within
/// 10% of the run's wall clock — the trace accounts for where the time
/// went, it does not invent or lose it.
#[test]
fn verify_spans_account_for_table1_wall_clock() {
    let _guard = lock();
    shadowdp_obs::arm();
    let _ = shadowdp_obs::take_spans(); // drop spans from earlier tests

    let jobs = table1::service_jobs();
    assert_eq!(jobs.len(), 18);
    let wall_start = Instant::now();
    let outcome = Pipeline::new().verify_corpus_parallel(&jobs, Some(1));
    let wall_us = wall_start.elapsed().as_micros() as u64;
    shadowdp_obs::disarm();
    assert_eq!(outcome.reports.len(), 18);

    let spans = shadowdp_obs::take_spans();
    assert_eq!(
        shadowdp_obs::spans_overwritten(),
        0,
        "an 18-job run must fit the ring"
    );

    // One verify span per job, wrapping that job's whole verification.
    let verify_spans = spans.iter().filter(|s| s.name == "verify").count();
    assert_eq!(verify_spans, 18, "one verify span per Table 1 job");
    // ... each labelled with its algorithm name for trace attribution.
    assert!(
        spans
            .iter()
            .filter(|s| s.name == "verify")
            .all(|s| s.label.is_some()),
        "verify spans carry the algorithm label"
    );

    let corpus_us = span_sum_us(&spans, "corpus");
    let verify_us = span_sum_us(&spans, "verify");
    assert!(corpus_us <= wall_us, "{corpus_us} vs {wall_us}");
    assert!(
        10 * corpus_us >= 9 * wall_us,
        "the corpus span must cover the run's wall clock \
         ({corpus_us}µs of {wall_us}µs)"
    );
    assert!(verify_us <= corpus_us, "{verify_us} vs {corpus_us}");
    // The per-phase spans must jointly account for the wall clock. (The
    // pin used to be on `verify` alone, which worked while verification
    // dominated the run; the trail-based solver core cut verification far
    // enough that the fixed parse/typecheck cost is no longer noise, so
    // the accounting is checked over all phases.)
    let phases_us = verify_us
        + span_sum_us(&spans, "parse")
        + span_sum_us(&spans, "lint")
        + span_sum_us(&spans, "typecheck")
        + span_sum_us(&spans, "lower");
    assert!(
        10 * phases_us >= 9 * wall_us,
        "phase spans must account for >=90% of the Table 1 wall clock \
         ({phases_us}µs of {wall_us}µs, {verify_us}µs in verify)"
    );

    // The Chrome export is structurally sound: one complete event per
    // span, wrapped in a traceEvents array.
    let json = shadowdp_obs::chrome_trace_json(&spans);
    assert!(
        json.starts_with("{\"traceEvents\":["),
        "{}",
        &json[..json.len().min(60)]
    );
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(json.matches("\"ph\":\"X\"").count(), spans.len());
    // Labelled spans render as `name [label]`.
    assert!(json.contains("\"name\":\"corpus [jobs=18 threads=1]\""));
    assert!(json.contains("\"name\":\"houdini.round"));
}

/// Counter values and histogram observation counts from one snapshot,
/// keyed by metric name (family members keep their `name{key="value"}`
/// key). Gauges are point-in-time and excluded. For histograms only the
/// *count* is required to be deterministic: the recorded values are
/// latencies, so sums and per-bucket placement legitimately jitter
/// across runs — how *often* each series is observed must not.
fn deterministic_view(snap: &[(String, SnapValue)]) -> BTreeMap<String, Vec<u64>> {
    let mut view = BTreeMap::new();
    for (name, value) in snap {
        match value {
            SnapValue::Counter(c) => {
                view.insert(name.clone(), vec![*c]);
            }
            SnapValue::Histogram { count, .. } => {
                view.insert(name.clone(), vec![*count]);
            }
            SnapValue::Gauge(_) | SnapValue::Float(_) => {}
        }
    }
    view
}

/// Element-wise `after - before` (a series absent from `before` counts
/// from zero — it was registered mid-run).
fn delta(
    before: &BTreeMap<String, Vec<u64>>,
    after: &BTreeMap<String, Vec<u64>>,
) -> BTreeMap<String, Vec<u64>> {
    let mut out = BTreeMap::new();
    for (name, row) in after {
        let zero = Vec::new();
        let base = before.get(name).unwrap_or(&zero);
        out.insert(
            name.clone(),
            row.iter()
                .enumerate()
                .map(|(i, v)| v - base.get(i).copied().unwrap_or(0))
                .collect(),
        );
    }
    out
}

/// Two identical cold corpus runs must move every counter by the same
/// amount and land the same number of observations in every histogram
/// bucket — the metric *values* are timing-free, only the latencies
/// (sums) may differ. The rendered exposition must also validate.
#[test]
fn identical_cold_runs_produce_identical_metric_deltas() {
    let _guard = lock();
    shadowdp_obs::disarm();

    let jobs = table1::service_jobs();
    let mut deltas = Vec::new();
    for _ in 0..2 {
        let before = deterministic_view(&shadowdp_obs::snapshot());
        let outcome = Pipeline::new().verify_corpus_parallel(&jobs, Some(1));
        assert_eq!(outcome.reports.len(), 18);
        let after = deterministic_view(&shadowdp_obs::snapshot());
        deltas.push(delta(&before, &after));
    }

    let (first, second) = (&deltas[0], &deltas[1]);
    assert_eq!(
        first.keys().collect::<Vec<_>>(),
        second.keys().collect::<Vec<_>>(),
        "both runs touch the same metric series"
    );
    for (name, row) in first {
        assert_eq!(
            row, &second[name],
            "metric `{name}` must move identically across identical cold runs"
        );
    }
    // And the runs did real, observable work.
    assert!(first["shadowdp_solver_queries_total"][0] > 0, "{first:?}");
    let phase_count = |phase: &str| {
        let key = format!("shadowdp_phase_us{{phase=\"{phase}\"}}");
        *first[&key].last().expect("histogram count")
    };
    assert_eq!(phase_count("parse"), 18);
    assert_eq!(phase_count("lint"), 18);
    assert_eq!(phase_count("typecheck"), 18);
    assert_eq!(phase_count("verify"), 18);

    let exposition = shadowdp_obs::render_prometheus();
    shadowdp_obs::validate_exposition(&exposition).expect("registry renders a valid exposition");
}
