//! The paper's "Fix ε" column: every Table 1 algorithm also verifies with
//! ε fixed to a concrete value before cost linearization (§6.1's second
//! strategy for non-linear arithmetic).

use shadowdp::corpus::table1_algorithms;
use shadowdp::Pipeline;
use shadowdp_num::Rat;
use shadowdp_verify::{Engine, Options, Verdict, VerifyMode};

#[test]
fn all_table1_algorithms_prove_with_fixed_eps() {
    for alg in table1_algorithms() {
        let pipeline = Pipeline::with_options(Options {
            mode: VerifyMode::FixEps(Rat::ONE),
            engine: Engine::Inductive,
            ..Options::default()
        });
        let report = pipeline
            .run(alg.source)
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name));
        assert!(
            matches!(report.verdict, Verdict::Proved),
            "{} (fix ε = 1): {:?}\n{:#?}",
            alg.name,
            report.verdict,
            report.verification.log
        );
    }
}

#[test]
fn fixed_eps_with_unusual_value_also_proves() {
    // ε = 1/2 exercises non-integer scaling.
    for alg in [
        shadowdp::corpus::noisy_max(),
        shadowdp::corpus::svt(),
        shadowdp::corpus::smart_sum(),
    ] {
        let pipeline = Pipeline::with_options(Options {
            mode: VerifyMode::FixEps(Rat::new(1, 2)),
            engine: Engine::Inductive,
            ..Options::default()
        });
        let report = pipeline.run(alg.source).unwrap();
        assert!(
            matches!(report.verdict, Verdict::Proved),
            "{} (fix ε = 1/2): {:?}",
            alg.name,
            report.verdict
        );
    }
}
