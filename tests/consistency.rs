//! Lemma 1 (Consistency), differentially tested: the transformed program
//! `c'` preserves the semantics of the source program `c` — for any input
//! and any noise vector, both produce the same output. The transformation
//! only adds distance bookkeeping over hat variables and asserts.
//!
//! We run the source and the type-system output side by side with replayed
//! noise across the whole (correct) corpus on randomized inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shadowdp::corpus;
use shadowdp_semantics::{Interp, Memory, Value};
use shadowdp_syntax::{parse_function, Name, Ty};
use shadowdp_typing::check_function;

/// Builds a memory binding every parameter plus the hat lists `^q`/`~q`
/// that a transformed program reads.
fn memory_for(f: &shadowdp_syntax::Function, rng: &mut StdRng, size: usize) -> Memory {
    let mut m = Memory::new();
    for p in &f.params {
        match &p.ty {
            Ty::List(_) => {
                let q: Vec<f64> = (0..size).map(|_| rng.gen_range(-5.0..5.0)).collect();
                let hat: Vec<f64> = (0..size).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let base = Name::plain(&p.name);
                m.set(base.clone(), Value::num_list(q));
                m.set(base.aligned_hat(), Value::num_list(hat.clone()));
                m.set(base.shadow_hat(), Value::num_list(hat));
            }
            _ => {
                let v = match p.name.as_str() {
                    "eps" => 1.0,
                    "size" => size as f64,
                    "T" => rng.gen_range(-2.0..2.0),
                    "NN" => 2.0,
                    "MM" => 2.0,
                    _ => rng.gen_range(-2.0..2.0),
                };
                m.set(Name::plain(&p.name), Value::num(v));
            }
        }
    }
    m
}

/// Number of samples an algorithm draws for a given input size (upper
/// bound; replay vectors are sized generously).
const NOISE_BUDGET: usize = 64;

#[track_caller]
fn check_consistency(alg: &corpus::Algorithm, trials: usize) {
    let source = parse_function(alg.source).expect("parses");
    let transformed = check_function(&source).expect("type checks").function;

    let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ alg.name.len() as u64);
    for trial in 0..trials {
        let size = 1 + (trial % 5);
        let memory = memory_for(&source, &mut rng, size);
        let noise: Vec<f64> = (0..NOISE_BUDGET)
            .map(|_| {
                let u: f64 = rng.gen_range(-0.49..0.49);
                -2.0 * u.signum() * (1.0 - 2.0 * u.abs()).ln()
            })
            .collect();

        let mut interp = Interp::with_seed(trial as u64);
        let src_run = interp
            .run_with_memory(&source, memory.clone(), Some(&noise))
            .unwrap_or_else(|e| panic!("{}: source run failed: {e}", alg.name));
        let tr_run = interp
            .run_with_memory(&transformed, memory, Some(&noise))
            .unwrap_or_else(|e| {
                panic!("{}: transformed run failed (trial {trial}): {e}", alg.name)
            });

        assert_eq!(
            src_run.output, tr_run.output,
            "{}: outputs diverge on trial {trial}",
            alg.name
        );
        assert_eq!(
            src_run.noise, tr_run.noise,
            "{}: consumed noise diverges on trial {trial}",
            alg.name
        );
    }
}

#[test]
fn noisy_max_transformation_is_consistent() {
    check_consistency(&corpus::noisy_max(), 25);
}

#[test]
fn svt_transformation_is_consistent() {
    check_consistency(&corpus::svt(), 25);
}

#[test]
fn svt_n1_transformation_is_consistent() {
    check_consistency(&corpus::svt_n1(), 25);
}

#[test]
fn num_svt_transformation_is_consistent() {
    check_consistency(&corpus::num_svt(), 25);
}

#[test]
fn gap_svt_transformation_is_consistent() {
    check_consistency(&corpus::gap_svt(), 25);
}

#[test]
fn prefix_sum_transformation_is_consistent() {
    check_consistency(&corpus::prefix_sum(), 25);
}

#[test]
fn smart_sum_transformation_is_consistent() {
    check_consistency(&corpus::smart_sum(), 25);
}

#[test]
fn partial_sum_transformation_is_consistent() {
    check_consistency(&corpus::partial_sum(), 25);
}

#[test]
fn num_svt_n1_transformation_is_consistent() {
    check_consistency(&corpus::num_svt_n1(), 25);
}

#[test]
fn laplace_mechanism_transformation_is_consistent() {
    check_consistency(&corpus::laplace_mechanism(), 25);
}
