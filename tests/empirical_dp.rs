//! Empirical differential-privacy checks over the corpus: correct
//! mechanisms stay within their proved ε (up to sampling slack); the buggy
//! Sparse Vector variants visibly violate it.
//!
//! These tests complement the formal proofs: they exercise the *actual
//! sampling semantics* rather than the verified model.

use shadowdp::corpus;
use shadowdp_semantics::{estimate_privacy_loss, DpTestConfig, Value};
use shadowdp_syntax::parse_function;

const EPS: f64 = 0.5;

fn config() -> DpTestConfig {
    DpTestConfig {
        trials: 15_000,
        threads: 4,
        seed: 7,
        smoothing: 2.0,
    }
}

#[test]
fn noisy_max_is_empirically_private() {
    let f = parse_function(corpus::noisy_max().source).unwrap();
    let q1 = vec![1.0, 2.0, 2.0];
    let q2 = vec![2.0, 1.0, 2.0];
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(EPS)),
            ("size", Value::num(3.0)),
            ("q", Value::num_list(q)),
        ]
    };
    let est = estimate_privacy_loss(
        &f,
        &mk(q1),
        &mk(q2),
        &config(),
        shadowdp_semantics::Value::event_key,
    );
    assert!(
        est.consistent_with(EPS, 0.25),
        "NoisyMax empirical loss {} > eps {}",
        est.max_log_ratio,
        EPS
    );
}

#[test]
fn svt_is_empirically_private() {
    let f = parse_function(corpus::svt_n1().source).unwrap();
    let q1 = vec![0.0, 1.0, -1.0];
    let q2 = vec![1.0, 0.0, 0.0];
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(EPS)),
            ("size", Value::num(3.0)),
            ("T", Value::num(0.5)),
            ("q", Value::num_list(q)),
        ]
    };
    let est = estimate_privacy_loss(
        &f,
        &mk(q1),
        &mk(q2),
        &config(),
        shadowdp_semantics::Value::event_key,
    );
    assert!(
        est.consistent_with(EPS, 0.25),
        "SVT empirical loss {} > eps {}",
        est.max_log_ratio,
        EPS
    );
}

#[test]
fn buggy_svt_without_threshold_noise_violates_dp() {
    let f = parse_function(corpus::bad_svt_no_threshold_noise().source).unwrap();
    // Without threshold noise each below-threshold answer leaks ~eps/4 of
    // budget that the (missing) threshold noise was supposed to absorb; the
    // all-false event over 8 queries accumulates a log-ratio of
    // 8·ln(P[η≥0]/P[η≥1]) ≈ 2.0 — double the claimed eps = 1.
    let eps = 1.0;
    let n = 8usize;
    let q1 = vec![0.0; n];
    let q2 = vec![-1.0; n];
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(eps)),
            ("size", Value::num(n as f64)),
            ("T", Value::num(0.0)),
            ("q", Value::num_list(q)),
        ]
    };
    let cfg = DpTestConfig {
        trials: 40_000,
        ..config()
    };
    let est = estimate_privacy_loss(
        &f,
        &mk(q1),
        &mk(q2),
        &cfg,
        shadowdp_semantics::Value::event_key,
    );
    assert!(
        !est.consistent_with(eps, 0.4),
        "buggy SVT not flagged: loss {} (event {})",
        est.max_log_ratio,
        est.worst_event
    );
}

#[test]
fn gap_svt_is_empirically_private_on_sign_pattern() {
    let f = parse_function(corpus::gap_svt().source).unwrap();
    let q1 = vec![0.0, 2.0, -1.0];
    let q2 = vec![1.0, 1.0, 0.0];
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(EPS)),
            ("size", Value::num(3.0)),
            ("T", Value::num(1.0)),
            ("NN", Value::num(1.0)),
            ("q", Value::num_list(q)),
        ]
    };
    // Continuous outputs: bucket by the above/below pattern.
    let est = estimate_privacy_loss(&f, &mk(q1), &mk(q2), &config(), |v| {
        v.as_list()
            .map(|xs| {
                xs.iter()
                    .map(|x| {
                        if x.as_num().unwrap_or(0.0) > 0.0 {
                            '1'
                        } else {
                            '0'
                        }
                    })
                    .collect::<String>()
            })
            .unwrap_or_default()
    });
    assert!(
        est.consistent_with(EPS, 0.25),
        "GapSVT empirical loss {} > eps {}",
        est.max_log_ratio,
        EPS
    );
}
