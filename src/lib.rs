//! Umbrella crate for the ShadowDP reproduction workspace.
//!
//! This crate only exists to host the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the library surface simply
//! re-exports the member crates so examples can use one import root.

pub use shadowdp;
pub use shadowdp_num;
pub use shadowdp_semantics;
pub use shadowdp_solver;
pub use shadowdp_syntax;
pub use shadowdp_synth;
pub use shadowdp_typing;
pub use shadowdp_verify;
