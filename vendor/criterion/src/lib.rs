//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with the criterion API shape this
//! workspace uses: `Criterion::bench_function`, benchmark groups with
//! `sample_size`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Behavior:
//!
//! - `cargo bench` runs each benchmark (short warmup, then timed samples)
//!   and prints `name … mean ± stddev per iteration`;
//! - `cargo bench -- --test` runs every body exactly once (smoke mode);
//! - if `CRITERION_JSON` names a file, one JSON line per benchmark
//!   (`{"id": …, "mean_ns": …, "stddev_ns": …, "samples": …}`) is appended —
//!   the repository's `BENCH_*.json` snapshots are produced this way.

use std::hint;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Per-iteration measurement driver handed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Collected per-iteration means, one per sample, in nanoseconds.
    results: Vec<f64>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    Measure,
    SmokeTest,
}

impl Bencher {
    /// Times `f`, storing per-iteration means across adaptive batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::SmokeTest {
            hint::black_box(f());
            return;
        }
        // Warmup and batch-size calibration: grow the batch until it runs
        // for at least ~2ms or 1k iterations.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 2_000 || batch >= 1024 {
                break;
            }
            batch *= 4;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                hint::black_box(f());
            }
            let elapsed = start.elapsed();
            self.results.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// The top-level harness.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            sample_size: 12,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test` selects smoke mode; other
    /// flags are accepted and ignored).
    pub fn configure_from_args(mut self) -> Criterion {
        if std::env::args().any(|a| a == "--test") {
            self.mode = Mode::SmokeTest;
        }
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.mode, self.sample_size, &id, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.mode, samples, &full, f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, samples: usize, id: &str, mut f: F) {
    let mut b = Bencher {
        mode,
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if mode == Mode::SmokeTest {
        println!("test {id} ... ok (smoke)");
        return;
    }
    if b.results.is_empty() {
        println!("{id:<52} (no measurements)");
        return;
    }
    let n = b.results.len() as f64;
    let mean = b.results.iter().sum::<f64>() / n;
    let var = b
        .results
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / n;
    let sd = var.sqrt();
    println!("{id:<52} {:>14} ± {} per iter", fmt_ns(mean), fmt_ns(sd));
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"stddev_ns\": {:.1}, \"samples\": {}}}",
                    id.replace('"', "'"),
                    mean,
                    sd,
                    b.results.len()
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}
