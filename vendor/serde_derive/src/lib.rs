//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as metadata
//! (nothing serializes at runtime in this environment), so the derives
//! accept any input and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
