//! Offline stand-in for `crossbeam`, implementing `crossbeam::thread::scope`
//! on top of `std::thread::scope` (which has subsumed it since Rust 1.63).

/// Scoped threads.
pub mod thread {
    /// A scope handle mirroring `crossbeam::thread::Scope`: spawned
    /// closures receive the scope again so they can spawn siblings.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam, a panicking child propagates by panicking
    /// here rather than surfacing through the `Err` variant — callers that
    /// `.expect()` the result behave identically.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_share() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::Mutex::new(0u64);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                let total = &total;
                s.spawn(move |_| {
                    *total.lock().unwrap() += chunk.iter().sum::<u64>();
                });
            }
        })
        .unwrap();
        assert_eq!(*total.lock().unwrap(), 10);
    }
}
