//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names in both the trait and the
//! macro namespace so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. No serialization
//! machinery is provided (nothing in the workspace serializes at runtime).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
