//! Offline stand-in for `rand`, covering the API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::{seed_from_u64, from_entropy}`,
//! `RngCore::next_u64`, and `Rng::gen_range` over `f64` ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic,
//! high-quality, and entirely self-contained.

use std::ops::Range;

/// Core RNG operations.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling over a range; implemented for `Range<f64>`.
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53-bit mantissa uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods.
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient entropy (here: the system clock —
    /// good enough for the sampling interpreter's default mode).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos ^ (&nanos as *const u64 as u64))
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the stand-in for `rand`'s `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
        for _ in 0..1000 {
            let x: f64 = a.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
