//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `Strategy` with `prop_map` / `prop_recursive`, range and tuple
//! strategies, `prop_oneof!`, `proptest::collection::vec`, the `proptest!`
//! macro with `#![proptest_config(..)]`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from the real crate: no shrinking (failures report the
//! original case), and `prop_assert*` panic like `assert*` instead of
//! routing through a `TestCaseError`.

/// Deterministic test RNG.
pub mod test_runner {
    /// splitmix64-based generator, seeded per (test, case).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator deterministically derived from a test name and case
        /// index.
        pub fn deterministic(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ ((case as u64) << 1) ^ 0x9E3779B97F4A7C15,
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// A uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform index in `0..n` (n > 0).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Arc::new(self))
        }

        /// Builds recursive values: `depth` layers of `recurse` over `self`
        /// as the leaf strategy. (`_desired_size` / `_branch` are accepted
        /// for API compatibility and ignored.)
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let inner = recurse(current).boxed();
                // Mix leaves back in so shallow values stay likely.
                current = Union::new(vec![leaf.clone(), inner]).boxed();
            }
            current
        }
    }

    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between same-typed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + (rng.next_u64() as u128 % span) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    lo + (rng.next_u64() as u128 % span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// A strategy producing a fixed value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Sizes accepted by [`vec`]: a fixed length or a range of lengths.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive).
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.hi > self.lo {
                self.lo + rng.index(self.hi - self.lo + 1)
            } else {
                self.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The common imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// runs its body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)*
                // One case per closure call so `prop_assume!` can skip via
                // early return.
                let mut __case = || $body;
                __case();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
