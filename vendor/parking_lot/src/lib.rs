//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind the
//! `parking_lot` API (non-`Result` `lock()`, `into_inner()` without
//! poisoning).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};

/// A mutex whose `lock` does not return a `Result` (poisoning is ignored,
/// matching `parking_lot` semantics).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock.
    pub fn lock(&self) -> StdGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
