//! The proof-search baseline (paper §6.4 + the Table 1 comparison column):
//! strip the annotations off a benchmark and let the synthesizer rediscover
//! them by enumeration, timing the search.
//!
//! The coupling-based verifier the paper compares against ([2]) also
//! *searches* for its proof — this is why it is minutes-slow where checking
//! a pinned annotation is seconds-fast. The ratio printed here reproduces
//! that comparison's shape.
//!
//! Run with `cargo run --example synthesis --release`.

use std::time::Instant;

use shadowdp::{corpus, Pipeline};
use shadowdp_syntax::parse_function;
use shadowdp_synth::{synthesize, SynthOptions};

fn main() {
    for alg in [corpus::laplace_mechanism(), corpus::svt_n1()] {
        println!("=== {} ===", alg.name);
        let f = parse_function(alg.source).unwrap();

        // Direct check with the paper's annotations.
        let t0 = Instant::now();
        let direct = Pipeline::new().run(alg.source).expect("verifies");
        let direct_time = t0.elapsed();
        println!(
            "direct check (annotations given): {:.3}s ({:?})",
            direct_time.as_secs_f64(),
            direct.verdict
        );

        // Search with annotations erased.
        let result = synthesize(&f, &SynthOptions::default());
        match &result.annotations {
            Some(anns) => {
                println!(
                    "synthesis: found after {} candidates in {:.3}s:",
                    result.attempts,
                    result.elapsed.as_secs_f64()
                );
                for (i, (sel, align)) in anns.iter().enumerate() {
                    println!("  site {i}: select {sel}, align {align}");
                }
                let ratio = result.elapsed.as_secs_f64() / direct_time.as_secs_f64().max(1e-9);
                println!("search / check ratio: {ratio:.0}x\n");
            }
            None => println!(
                "synthesis failed after {} candidates in {:.3}s\n",
                result.attempts,
                result.elapsed.as_secs_f64()
            ),
        }
    }
}
