//! Prints per-algorithm solver statistics — query counts, theory calls,
//! memo-table hit rates, and the per-candidate Houdini consecution hit
//! rate (`consec`: assumption-set-keyed entailments answered from the
//! memo) — for the Table 1 corpus.
//!
//! ```text
//! cargo run --release --example solver_cache_stats
//! ```

use shadowdp::corpus;
use shadowdp::Pipeline;
use shadowdp_verify::Verdict;

fn main() {
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>9}",
        "algorithm", "checks", "proves", "hits", "hit-rate", "consec", "theory", "verdict"
    );
    for alg in corpus::table1_algorithms() {
        let report = Pipeline::new()
            .run(alg.source)
            .expect("corpus pipeline runs");
        let s = report.solver_stats;
        let rate = if s.checks > 0 {
            100.0 * s.cache_hits as f64 / s.checks as f64
        } else {
            0.0
        };
        let consec = s
            .assumption_hit_rate()
            .map(|r| format!("{:.1}%", 100.0 * r))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>9.1}% {:>8} {:>8} {:>9}",
            alg.name,
            s.checks,
            s.proves,
            s.cache_hits,
            rate,
            consec,
            s.theory_calls,
            match report.verdict {
                Verdict::Proved => "proved",
                Verdict::Refuted(_) => "refuted",
                Verdict::Unknown(_) => "unknown",
                Verdict::ResourceExhausted { .. } => "exhausted",
            }
        );
    }
}
