//! Prints per-algorithm solver statistics — query counts, theory calls,
//! memo-table hit rates, the per-candidate Houdini consecution hit
//! rate (`consec`: assumption-set-keyed entailments answered from the
//! memo), the trail engine's search volume (`trail`: reversible ops
//! recorded, `depth`: deepest decision level, `sat-reuse`: constraint
//! pushes that extended live saturation state instead of recomputing
//! it) — and per-phase wall-clock split (typecheck vs verify, from
//! tracing spans) for the Table 1 corpus.
//!
//! ```text
//! cargo run --release --example solver_cache_stats
//! ```

use shadowdp::corpus;
use shadowdp::Pipeline;
use shadowdp_verify::Verdict;

/// Total duration of all spans named `name` in microseconds.
fn span_total_us(spans: &[shadowdp_obs::SpanRecord], name: &str) -> u64 {
    spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.dur_us)
        .sum()
}

fn main() {
    // Arm span collection so each run() records parse/typecheck/verify
    // phase spans; the ring is drained per algorithm below.
    shadowdp_obs::arm();
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9}",
        "algorithm",
        "checks",
        "proves",
        "hits",
        "hit-rate",
        "consec",
        "theory",
        "trail",
        "depth",
        "sat-reuse",
        "tc-ms",
        "verify-ms",
        "verdict"
    );
    for alg in corpus::table1_algorithms() {
        let report = Pipeline::new()
            .run(alg.source)
            .expect("corpus pipeline runs");
        let spans = shadowdp_obs::take_spans();
        let s = report.solver_stats;
        let rate = if s.checks > 0 {
            100.0 * s.cache_hits as f64 / s.checks as f64
        } else {
            0.0
        };
        let consec = s
            .assumption_hit_rate()
            .map_or_else(|| "-".into(), |r| format!("{:.1}%", 100.0 * r));
        let saturations = s.saturation_reuses + s.resaturations;
        let sat_reuse = if saturations > 0 {
            format!(
                "{:.1}%",
                100.0 * s.saturation_reuses as f64 / saturations as f64
            )
        } else {
            "-".into()
        };
        println!(
            "{:<22} {:>8} {:>8} {:>8} {:>9.1}% {:>8} {:>8} {:>8} {:>6} {:>10} {:>9.1} {:>9.1} {:>9}",
            alg.name,
            s.checks,
            s.proves,
            s.cache_hits,
            rate,
            consec,
            s.theory_calls,
            s.trail_ops,
            s.max_trail_depth,
            sat_reuse,
            span_total_us(&spans, "typecheck") as f64 / 1_000.0,
            span_total_us(&spans, "verify") as f64 / 1_000.0,
            match report.verdict {
                Verdict::Proved => "proved",
                Verdict::Refuted(_) => "refuted",
                Verdict::Unknown(_) => "unknown",
                Verdict::ResourceExhausted { .. } => "exhausted",
            }
        );
    }
}
