//! Bug finding on incorrect Sparse Vector variants — the application the
//! paper motivates in §1 and §8: because the transformed program has
//! standard semantics, a symbolic executor can produce counterexamples for
//! buggy programs.
//!
//! Each buggy variant type-checks but fails verification; the bounded
//! model checker returns a concrete witness (query distances and noise
//! values), and the empirical tester confirms the privacy violation at
//! runtime for the headline bug.
//!
//! Run with `cargo run --example bug_finding --release`.

use shadowdp::{corpus, Pipeline};
use shadowdp_semantics::{estimate_privacy_loss, DpTestConfig, Value};
use shadowdp_syntax::parse_function;
use shadowdp_verify::{BmcOptions, Engine, Options, Verdict};

fn main() {
    for alg in corpus::buggy_algorithms() {
        println!("=== {} ===", alg.name);
        let options = Options {
            engine: Engine::InductiveThenBmc,
            bmc: BmcOptions {
                list_len: 3,
                max_unroll: None,
                assumptions: alg
                    .bmc_assumptions
                    .iter()
                    .map(|s| shadowdp_syntax::parse_expr(s).unwrap())
                    .collect(),
            },
            ..Options::default()
        };
        match Pipeline::with_options(options).run(alg.source) {
            Err(e) => println!("rejected by the type system: {e}\n"),
            Ok(report) => match &report.verdict {
                Verdict::Refuted(cex) => {
                    println!("verification refuted:");
                    println!("  {cex}\n");
                }
                other => println!("unexpected verdict: {other:?}\n"),
            },
        }
    }

    // Empirical confirmation for the classic "no threshold noise" bug.
    println!("=== Empirical confirmation: SVT without threshold noise ===");
    let alg = corpus::bad_svt_no_threshold_noise();
    let f = parse_function(alg.source).unwrap();
    let eps = 1.0;
    // Adversarial adjacent inputs: many queries at the (un-noised)
    // threshold on one side and just below on the other — each one leaks
    // budget that the missing threshold noise was supposed to absorb, so
    // the all-below event accumulates ~2ε of log-ratio over 8 queries.
    let n = 8usize;
    let q1 = vec![0.0; n];
    let q2 = vec![-1.0; n];
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(eps)),
            ("size", Value::num(n as f64)),
            ("T", Value::num(0.0)),
            ("q", Value::num_list(q)),
        ]
    };
    let est = estimate_privacy_loss(
        &f,
        &mk(q1),
        &mk(q2),
        &DpTestConfig {
            trials: 40_000,
            ..DpTestConfig::default()
        },
        shadowdp_semantics::Value::event_key,
    );
    println!(
        "worst observed log-ratio: {:.3} vs. claimed eps = {eps} \
         (event `{}`)",
        est.max_log_ratio, est.worst_event
    );
    if !est.consistent_with(eps, 0.30) {
        println!("empirically CONFIRMED: not {eps}-differentially private.");
    } else {
        println!("note: this input pair did not expose the bug empirically.");
    }
}
