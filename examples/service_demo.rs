//! The verification service end to end, in one process: start `shadowdpd`
//! on a temp socket, submit a small corpus twice, restart the daemon, and
//! show the second generation serving everything from the persistent
//! verdict store — byte-identical digests, zero fresh solver work.
//!
//! Run with `cargo run --release --example service_demo`. This is the
//! in-process flavor; the same flow over real binaries is
//! `shadowdpd --socket … --store …` + `shadowdp table1 --socket …`
//! (which the CI `service` job drives).

use std::thread;

use shadowdp::{corpus, JobSpec};
use shadowdp_service::daemon::{self, DaemonConfig};
use shadowdp_service::Client;

fn start(config: &DaemonConfig) -> (thread::JoinHandle<()>, Client) {
    let run_config = config.clone();
    let handle = thread::spawn(move || daemon::run(run_config).expect("daemon runs"));
    for _ in 0..200 {
        if let Ok(mut client) = Client::connect(&config.socket) {
            if client.ping().is_ok() {
                return (handle, client);
            }
        }
        thread::sleep(std::time::Duration::from_millis(25));
    }
    panic!("daemon did not come up");
}

fn main() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let config = DaemonConfig {
        store: Some(dir.join(format!("shadowdp-demo-{pid}.store"))),
        ..DaemonConfig::new(dir.join(format!("shadowdp-demo-{pid}.sock")))
    };

    let specs: Vec<JobSpec> = [
        corpus::laplace_mechanism(),
        corpus::noisy_max(),
        corpus::partial_sum(),
    ]
    .iter()
    .map(|alg| JobSpec::new(alg.source))
    .collect();

    println!("=== generation 1: cold daemon ===");
    let (handle, mut client) = start(&config);
    let pass1 = client.run_corpus(&specs).expect("pass 1");
    for outcome in &pass1 {
        println!(
            "  job {}: {} (from {}, {} solver checks, {} theory calls)",
            outcome.id,
            outcome.verdict,
            if outcome.from_store {
                "store"
            } else {
                "fresh run"
            },
            outcome.checks,
            outcome.theory_calls,
        );
    }
    let status = client.status().expect("status");
    println!(
        "  daemon: memo={} entries, pipeline store={} entries",
        status.memo_entries, status.pipeline_store
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");

    println!("=== generation 2: restarted daemon, same store ===");
    let (handle, mut client) = start(&config);
    let pass2 = client.run_corpus(&specs).expect("pass 2");
    for (a, b) in pass1.iter().zip(&pass2) {
        assert_eq!(a.digest, b.digest, "restart must not change results");
        assert!(b.from_store, "restart must serve from the store");
        println!(
            "  job {}: {} (from {}, digest identical: {})",
            b.id,
            b.verdict,
            if b.from_store { "store" } else { "fresh run" },
            a.digest == b.digest,
        );
    }
    let status = client.status().expect("status");
    println!(
        "  daemon: store served {} of {} jobs, zero fresh verifications",
        status.store_hits,
        pass2.len()
    );
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");

    if let Some(store) = &config.store {
        let _ = std::fs::remove_file(store);
    }
    println!("ok");
}
