//! Regenerates the paper's **Table 1**: type-check and verification time
//! for all nine benchmark algorithms, in both cost-linearization modes,
//! alongside the paper's reference numbers.
//!
//! Run with `cargo run --example table1 --release`.

use shadowdp::table1::{render, run_table1};

fn main() {
    let rows = run_table1();
    println!("{}", render(&rows));
    println!(
        "All proved: {}",
        rows.iter().all(|r| r.proved_scaled && r.proved_fix_eps)
    );
    println!(
        "\nPaper hardware: dual Xeon E5-2620 v4, CPAChecker v1.8; ours: this\n\
         machine, the built-in Houdini/QF-LRA engine. Absolute numbers differ;\n\
         the shape to check is (a) every algorithm verifies, (b) within\n\
         seconds, (c) orders of magnitude faster than the synthesis baseline\n\
         (see `cargo run --example synthesis`)."
    );
}
