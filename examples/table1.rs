//! Regenerates the paper's **Table 1**: type-check and verification time
//! for all nine benchmark algorithms, in both cost-linearization modes,
//! alongside the paper's reference numbers.
//!
//! Run with `cargo run --example table1 --release`. Flags:
//!
//! - `--parallel [N]` — run the corpus through the work-stealing driver
//!   (`N` workers, default all cores) instead of sequentially;
//! - `--compare` — run it both ways, check the outputs are byte-identical,
//!   and print the wall-clock speedup.

use shadowdp::table1::{corpus_jobs, render, rows_from_outcome, run_table1_parallel};
use shadowdp::Pipeline;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel = args.iter().any(|a| a == "--parallel");
    let compare = args.iter().any(|a| a == "--compare");
    let threads: Option<usize> = args
        .iter()
        .skip_while(|a| *a != "--parallel")
        .nth(1)
        .and_then(|a| a.parse().ok());

    let rows = if compare {
        let jobs = corpus_jobs();
        let pipeline = Pipeline::new();
        let sequential = pipeline.verify_corpus(&jobs);
        let (rows, outcome) = run_table1_parallel(threads);
        assert_eq!(
            sequential.digest(),
            outcome.digest(),
            "parallel driver diverged from the sequential reference"
        );
        println!(
            "corpus wall-clock: sequential {:.3} s, parallel {:.3} s on {} workers \
             ({:.2}x speedup); outputs byte-identical\n",
            sequential.wall.as_secs_f64(),
            outcome.wall.as_secs_f64(),
            outcome.threads,
            sequential.wall.as_secs_f64() / outcome.wall.as_secs_f64().max(1e-9),
        );
        rows
    } else if parallel {
        let (rows, outcome) = run_table1_parallel(threads);
        println!(
            "corpus wall-clock: {:.3} s on {} workers\n",
            outcome.wall.as_secs_f64(),
            outcome.threads
        );
        rows
    } else {
        rows_from_outcome(&Pipeline::new().verify_corpus(&corpus_jobs()))
    };

    println!("{}", render(&rows));
    println!(
        "All proved: {}",
        rows.iter().all(|r| r.proved_scaled && r.proved_fix_eps)
    );
    println!(
        "\nPaper hardware: dual Xeon E5-2620 v4, CPAChecker v1.8; ours: this\n\
         machine, the built-in Houdini/QF-LRA engine. Absolute numbers differ;\n\
         the shape to check is (a) every algorithm verifies, (b) within\n\
         seconds, (c) orders of magnitude faster than the synthesis baseline\n\
         (see `cargo run --example synthesis`)."
    );
}
