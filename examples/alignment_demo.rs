//! Reproduction of the paper's **Figure 2**: the selective alignment for
//! Report Noisy Max on the running example.
//!
//! Two adjacent query vectors `D1` and `D2`, one concrete noise vector for
//! the execution on `D1`, the shadow execution's (identical) noise, and the
//! selectively aligned noise for `D2`. Running Noisy Max on `D2` with the
//! aligned noise must reproduce the `D1` output.
//!
//! Run with `cargo run --example alignment_demo`.

use shadowdp::corpus;
use shadowdp_semantics::{Interp, Value};
use shadowdp_syntax::parse_function;

fn main() {
    // The paper's running example (Fig. 2, extended with q[3] = 4).
    let d1 = [1.0, 2.0, 2.0, 4.0];
    let d2 = [2.0, 1.0, 2.0, 4.0];
    let noise_d1 = [1.0, 2.0, 1.0, 1.0];

    let f = parse_function(corpus::noisy_max().source).expect("corpus parses");
    let mut interp = Interp::with_seed(0);

    let run1 = interp
        .run_with_noise(
            &f,
            [
                ("eps", Value::num(1.0)),
                ("size", Value::num(4.0)),
                ("q", Value::num_list(d1)),
            ],
            &noise_d1,
        )
        .expect("D1 run succeeds");
    let winner = run1.output.as_num().expect("index output") as usize;

    // The shadow execution always reuses D1's noise; the selective
    // alignment uses the shadow noise everywhere except the winning index,
    // which gets +2 (paper §2.4, Case 1/Case 2 construction).
    let shadow: Vec<f64> = noise_d1.to_vec();
    let aligned: Vec<f64> = noise_d1
        .iter()
        .enumerate()
        .map(|(i, a)| if i == winner { a + 2.0 } else { *a })
        .collect();

    let run2 = interp
        .run_with_noise(
            &f,
            [
                ("eps", Value::num(1.0)),
                ("size", Value::num(4.0)),
                ("q", Value::num_list(d2)),
            ],
            &aligned,
        )
        .expect("D2 run succeeds");

    println!("Figure 2 — selective alignment for Report Noisy Max\n");
    print!("{:<11}", "D1:");
    for (i, v) in d1.iter().enumerate() {
        print!("  q[{i}]={v}");
    }
    println!();
    print!("{:<11}", "noise:");
    for (i, v) in noise_d1.iter().enumerate() {
        print!("  a{i}={v}");
    }
    println!();
    print!("{:<11}", "shadow:");
    for (i, v) in shadow.iter().enumerate() {
        print!("  a{i}={v}");
    }
    println!();
    print!("{:<11}", "aligned:");
    for (i, v) in aligned.iter().enumerate() {
        print!("  a{i}={v}");
    }
    println!();
    print!("{:<11}", "D2:");
    for (i, v) in d2.iter().enumerate() {
        print!("  q[{i}]={v}");
    }
    println!("\n");
    println!("NoisyMax(D1, noise)    = {}", run1.output);
    println!("NoisyMax(D2, aligned)  = {}", run2.output);
    assert_eq!(
        run1.output, run2.output,
        "the alignment must reproduce the D1 output on D2"
    );
    println!("\nOutputs agree — the alignment works, at privacy cost |2|/(2/eps) = eps.");
}
