//! Quickstart: verify Report Noisy Max end to end.
//!
//! Prints the paper's Figure 1 — the annotated source, the transformed
//! program the type system emits, the target program the verifier checks,
//! and the verdict with the discovered loop invariants.
//!
//! Run with `cargo run --example quickstart`.

use shadowdp::{corpus, Pipeline};
use shadowdp_syntax::pretty_function;
use shadowdp_verify::Verdict;

fn main() {
    let alg = corpus::noisy_max();
    println!("=== Source (paper Fig. 1 top, ASCII syntax) ===");
    println!("{}", alg.source.trim());

    let report = Pipeline::new()
        .run(alg.source)
        .expect("Noisy Max type-checks");

    println!("\n=== Transformed program c' (paper Fig. 1 bottom) ===");
    println!("{}", pretty_function(&report.transformed));

    println!("=== Target program c'' (paper Fig. 5 lowering) ===");
    println!("{}", pretty_function(&report.verification.target));

    println!("=== Verdict ===");
    match &report.verdict {
        Verdict::Proved => println!("PROVED: Report Noisy Max is eps-differentially private."),
        Verdict::Refuted(cex) => println!("REFUTED: {cex}"),
        Verdict::Unknown(why) => println!("UNKNOWN: {why}"),
        Verdict::ResourceExhausted { reason } => println!("RESOURCE EXHAUSTED: {reason}"),
    }
    for line in &report.verification.log {
        println!("  {line}");
    }
    println!(
        "\ntype check: {:.3}s, verification: {:.3}s",
        report.typecheck_time.as_secs_f64(),
        report.verify_time.as_secs_f64()
    );
}
