//! The paper's novel contribution (§6.2.2): **Gap Sparse Vector** — release
//! the gap between the noisy query answer and the noisy threshold at the
//! same ε as plain Sparse Vector, reusing the comparison noise.
//!
//! This example (1) formally verifies the algorithm, (2) runs it on a
//! synthetic workload, and (3) cross-checks with the empirical DP tester on
//! a pair of adjacent inputs.
//!
//! Run with `cargo run --example gap_svt --release` (the empirical test
//! does tens of thousands of trials).

use shadowdp::{corpus, Pipeline};
use shadowdp_semantics::{estimate_privacy_loss, DpTestConfig, Interp, Value};
use shadowdp_syntax::parse_function;
use shadowdp_verify::Verdict;

fn main() {
    let alg = corpus::gap_svt();
    let report = Pipeline::new().run(alg.source).expect("type checks");
    println!("=== Gap Sparse Vector: formal verification ===");
    match &report.verdict {
        Verdict::Proved => println!(
            "PROVED eps-DP in {:.3}s (type check {:.3}s)",
            report.verify_time.as_secs_f64(),
            report.typecheck_time.as_secs_f64()
        ),
        other => println!("unexpected verdict: {other:?}"),
    }
    for line in &report.verification.log {
        println!("  {line}");
    }

    // A synthetic workload: 8 queries drifting past the threshold.
    let f = parse_function(alg.source).unwrap();
    let queries = [1.0, 3.0, 2.0, 7.0, 5.0, 8.0, 2.0, 9.0];
    let mut interp = Interp::with_seed(2024);
    let run = interp
        .run(
            &f,
            [
                ("eps", Value::num(1.0)),
                ("size", Value::num(queries.len() as f64)),
                ("T", Value::num(6.0)),
                ("NN", Value::num(2.0)),
                ("q", Value::num_list(queries)),
            ],
        )
        .expect("runs");
    println!("\n=== One run on q = {queries:?}, T = 6, N = 2 ===");
    println!(
        "released gaps (0 = below threshold, newest first): {}",
        run.output
    );

    // Empirical check on adjacent inputs: every query shifted by +1.
    println!("\n=== Empirical DP estimate (adjacent inputs, 20k trials/side) ===");
    let q1: Vec<f64> = queries.to_vec();
    let q2: Vec<f64> = queries.iter().map(|x| x + 1.0).collect();
    let eps = 0.5;
    let mk = |q: Vec<f64>| {
        vec![
            ("eps", Value::num(eps)),
            ("size", Value::num(q.len() as f64)),
            ("T", Value::num(6.0)),
            ("NN", Value::num(2.0)),
            ("q", Value::num_list(q)),
        ]
    };
    let est = estimate_privacy_loss(
        &f,
        &mk(q1),
        &mk(q2),
        &DpTestConfig {
            trials: 20_000,
            ..DpTestConfig::default()
        },
        // Bucket by the above/below pattern (discrete events).
        |v| {
            v.as_list()
                .map(|xs| {
                    xs.iter()
                        .map(|x| {
                            if x.as_num().unwrap_or(0.0) > 0.0 {
                                '1'
                            } else {
                                '0'
                            }
                        })
                        .collect::<String>()
                })
                .unwrap_or_default()
        },
    );
    println!(
        "worst observed log-ratio over {} events: {:.3} (budget eps = {eps})",
        est.distinct_events, est.max_log_ratio
    );
    if est.consistent_with(eps, 0.30) {
        println!("consistent with the proved {eps}-DP bound.");
    } else {
        println!("WARNING: estimate exceeds the bound — investigate!");
    }
}
